"""Typed query AST and query → executable plan compilation.

A query is a term-level boolean tree of frozen :class:`Term` /
:class:`And` / :class:`Or` nodes::

    And(Or("news", "sports"), "2024")             # (L1 ∪ L2) ∩ L3

Bare strings coerce to :class:`Term` wherever a node is expected.  The
AST round-trips through JSON (``node.to_json()`` /
:func:`query_from_json`), which is what the HTTP wire protocol in
:mod:`repro.server` carries.  :func:`parse_query` — the single
normalisation chokepoint every entry point calls — accepts only AST
nodes and bare term strings; the historical nested-tuple grammar
(``("and", ("or", "news", "sports"), "2024")``) was removed together
with wire protocol v1 (see ``docs/serving.md``).

Per shard, :func:`compile_shard_plan` resolves terms to compressed sets
and builds a :mod:`repro.ops.expressions` tree, constant-folding what
the paper's one-shot benchmarks never see: terms missing from the shard
become empty leaves, an ``and`` over an empty leaf folds to the empty
plan, an ``or`` drops empty children.  The compiled plan shares the
evaluator's ordering hooks (:func:`~repro.ops.expressions.and_order`,
:func:`~repro.ops.expressions.or_partition`) so ``describe()`` shows
exactly the leaf-size-ordered SvS and per-codec compressed-OR grouping
execution will use.

Execution adds two dimensions the plain evaluator lacks.  First, the
cache: every full leaf materialisation goes through
:func:`repro.core.decode` keyed by ``(shard, term, codec)``, and leaves
whose decoded form is already cached are merged as arrays instead of
re-probed through the compressed form.  Second, compressed-domain
execution: when adjacent operands share a codec that declares
:class:`~repro.core.base.Capability` ``INTERSECT_COMPRESSED`` /
``UNION_COMPRESSED``, the evaluator folds them with the codec's
compressed kernels and threads the *compressed* intermediate onward,
materialising positions only once at the root (or at the first operator
that cannot stay compressed).  :class:`ExecStats` counts how often each
regime fired.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Union

import numpy as np

from repro.core.base import (
    Capability,
    CompressedIntegerSet,
    IntegerSetCodec,
    difference_sorted_arrays,
    intersect_sorted_arrays,
    union_sorted_arrays,
)
from repro.core.decode import ArrayCache, DecodeObserver, decode
from repro.core.registry import get_codec
from repro.ops import expressions as ops_expr
from repro.ops.expressions import (
    QueryExpression,
    and_order,
    or_partition,
)
from repro.store.store import PostingStore


# ----------------------------------------------------------------------
# Typed query AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Term:
    """A single posting-list reference by term name."""

    name: str

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"term name must be a non-empty string, got {self.name!r}")

    def to_json(self) -> dict:
        return {"op": "term", "name": self.name}


def _coerce_child(child: "QueryNode | str") -> "QueryNode":
    if isinstance(child, str):
        return Term(child)
    if isinstance(child, (Term, And, Or)):
        return child
    raise TypeError(
        f"query children must be Term/And/Or nodes or term-name strings, "
        f"got {child!r}"
    )


@dataclass(frozen=True)
class And:
    """Intersection of query sub-trees."""

    children: tuple["QueryNode", ...]

    def __init__(self, *children: "QueryNode | str") -> None:
        if not children:
            raise ValueError("empty 'and' node")
        object.__setattr__(
            self, "children", tuple(_coerce_child(c) for c in children)
        )

    def to_json(self) -> dict:
        return {"op": "and", "children": [c.to_json() for c in self.children]}


@dataclass(frozen=True)
class Or:
    """Union of query sub-trees."""

    children: tuple["QueryNode", ...]

    def __init__(self, *children: "QueryNode | str") -> None:
        if not children:
            raise ValueError("empty 'or' node")
        object.__setattr__(
            self, "children", tuple(_coerce_child(c) for c in children)
        )

    def to_json(self) -> dict:
        return {"op": "or", "children": [c.to_json() for c in self.children]}


QueryNode = Union[Term, And, Or]
#: Anything the entry points accept: an AST node or a bare term name.
QueryLike = Union[Term, And, Or, str]


def parse_query(query: QueryLike) -> QueryNode:
    """Normalise any accepted query spelling to the typed AST.

    AST nodes pass through; a bare string becomes a :class:`Term`.  The
    deprecated nested-tuple grammar is no longer accepted (removed with
    wire protocol v2) — build typed nodes instead, e.g.
    ``And(Or("a", "b"), "c")``.
    """
    if isinstance(query, (Term, And, Or)):
        return query
    if isinstance(query, str):
        return Term(query)
    if isinstance(query, tuple):
        raise TypeError(
            "nested-tuple query expressions were removed; build the typed "
            "AST instead, e.g. And(Or('a', 'b'), 'c') from repro.store"
        )
    raise TypeError(f"not a query expression: {query!r}")


def query_from_json(obj: dict | str) -> QueryNode:
    """Rebuild an AST from :meth:`to_json` output (the wire format).

    A bare string is accepted as shorthand for a single term, matching
    what the HTTP protocol allows in request bodies.
    """
    if isinstance(obj, str):
        return Term(obj)
    if not isinstance(obj, dict):
        raise ValueError(f"query JSON must be an object or string, got {obj!r}")
    op = obj.get("op")
    if op == "term":
        name = obj.get("name")
        if not isinstance(name, str):
            raise ValueError(f"term node needs a string 'name', got {name!r}")
        return Term(name)
    if op in ("and", "or"):
        children = obj.get("children")
        if not isinstance(children, list) or not children:
            raise ValueError(f"{op!r} node needs a non-empty 'children' list")
        parts = [query_from_json(c) for c in children]
        return And(*parts) if op == "and" else Or(*parts)
    raise ValueError(f"unknown query op {op!r}")


# ----------------------------------------------------------------------
# Canonicalization (plan-result cache keys)
# ----------------------------------------------------------------------
def canonical_key(node: QueryNode) -> str:
    """A stable string identity for an AST node.

    Term names are JSON-quoted (they may contain spaces or parentheses),
    operator nodes render as s-expressions — so two structurally equal
    trees always produce the same key and no two different trees can
    collide.  Callers should canonicalize first: the key of
    ``And(a, b)`` differs from ``And(b, a)`` until :func:`canonicalize`
    sorts them.
    """
    if isinstance(node, Term):
        return json.dumps(node.name)
    op = "and" if isinstance(node, And) else "or"
    return f"({op} {' '.join(canonical_key(c) for c in node.children)})"


def canonicalize(node: QueryNode) -> QueryNode:
    """Normal form under the boolean-set algebra the evaluator implements.

    Same-operator children are flattened (``And(And(a, b), c)`` ≡
    ``And(a, b, c)``), duplicates are folded (idempotence), commutative
    children are sorted by :func:`canonical_key`, and single-child
    operator nodes collapse to the child.  Queries that differ only in
    spelling — the paper's overlapping Q3.4/Q4.1 shapes — therefore share
    one plan-cache entry.
    """
    if isinstance(node, Term):
        return node
    same: type[And] | type[Or] = And if isinstance(node, And) else Or
    flat: list[QueryNode] = []
    for child in node.children:
        c = canonicalize(child)
        if isinstance(c, same):
            flat.extend(c.children)
        else:
            flat.append(c)
    unique: dict[str, QueryNode] = {}
    for c in flat:
        unique.setdefault(canonical_key(c), c)
    ordered = [unique[k] for k in sorted(unique)]
    if len(ordered) == 1:
        return ordered[0]
    return same(*ordered)


@dataclass(frozen=True)
class Query:
    """One serveable query: a term expression plus an optional shard set.

    Attributes:
        expression: a :class:`Term`/:class:`And`/:class:`Or` tree (bare
            strings are normalised by the engine's entry points via
            :func:`parse_query`).
        shards: shards to scatter over; ``None`` means every shard.
        query_id: caller-chosen label, echoed in the result.
    """

    expression: QueryLike
    shards: tuple[str, ...] | None = None
    query_id: str = ""


def query_terms(expression: QueryLike) -> list[str]:
    """Distinct term names referenced by an expression, in first-use order."""
    out: dict[str, None] = {}

    def walk(node: QueryNode) -> None:
        if isinstance(node, Term):
            out[node.name] = None
            return
        for child in node.children:
            walk(child)

    walk(parse_query(expression))
    return list(out)


def _unwrap(cs: CompressedIntegerSet) -> CompressedIntegerSet:
    """Strip wrapper codecs (Adaptive) down to their registered inner set.

    Wrapper sets nest a full ``CompressedIntegerSet`` as payload; the
    inner set is what the expression evaluator's registry lookups can
    operate on, and its codec name is the honest cache-key component.
    """
    while isinstance(cs.payload, CompressedIntegerSet):
        cs = cs.payload
    return cs


@dataclass
class ExecStats:
    """Operator counters for one plan execution.

    ``compressed_ops`` counts compressed-domain kernel invocations —
    ``intersect_compressed`` / ``union_compressed`` folds, SvS probes via
    ``intersect_with_array``, and cold ``union_many`` groups — i.e. work
    done without materialising the operands.  ``decoded_ops`` counts full
    leaf materialisations the plan requested (decode-cache hits and
    misses alike; the observer separates those).  The engine aggregates
    both across shards onto the query result and the store metrics.
    """

    compressed_ops: int = 0
    decoded_ops: int = 0

    def merge(self, other: "ExecStats") -> None:
        self.compressed_ops += other.compressed_ops
        self.decoded_ops += other.decoded_ops


#: What internal evaluation steps may yield: materialised positions, or a
#: still-compressed intermediate threading through capable kernels.
_EvalResult = Union[np.ndarray, CompressedIntegerSet]


def _result_count(value: _EvalResult) -> int:
    return int(value.size) if isinstance(value, np.ndarray) else value.n


@dataclass
class ShardPlan:
    """One shard's executable slice of a query."""

    shard: str
    expr: QueryExpression | None  #: None ⇒ constant-folded to empty
    #: id(leaf cs) → (shard, term, codec_name) cache key.
    keymap: dict[int, tuple[str, str, str]] = field(default_factory=dict)
    terms: list[str] = field(default_factory=list)
    missing_terms: list[str] = field(default_factory=list)
    #: Terms this query needed that were lost to a lenient load or whose
    #: pending-delta merge failed — their absence makes results
    #: *partial*, unlike never-indexed terms.
    degraded_terms: list[str] = field(default_factory=list)
    #: Terms served through a pending-write overlay (writable stores).
    delta_terms: list[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def execute(
        self,
        cache: ArrayCache | None = None,
        observer: DecodeObserver | None = None,
        cache_probes: bool = False,
        compressed: bool = True,
        stats: ExecStats | None = None,
    ) -> np.ndarray:
        """Evaluate to a sorted array, consulting/filling *cache*.

        With ``cache_probes=True`` every AND probe leaf is also decoded
        through the cache (array-merge instead of compressed probe) —
        higher first-query cost, fully cached steady state.

        With ``compressed=True`` (the default) operators whose operands
        share a codec declaring the matching
        :class:`~repro.core.base.Capability` are folded in the
        compressed domain, and intermediates stay compressed until a
        consumer needs positions.  ``compressed=False`` forces the
        decode/probe paths everywhere (the decode-then-merge baseline
        the perf gate compares against).  Pass *stats* to receive the
        per-execution operator counters.
        """
        stats = stats if stats is not None else ExecStats()
        # cache_probes is an explicit materialise-through-cache policy:
        # every leaf must land in the decode cache, so compressed-domain
        # deferral (which skips leaf materialisation entirely) is off.
        compressed = compressed and not cache_probes
        if self.expr is None:
            return np.empty(0, dtype=np.int64)
        if isinstance(self.expr, ops_expr.Leaf):
            # A bare-leaf root always materialises through the decode
            # cache — returning the compressed set here would bypass the
            # keyed cache and regress repeat single-term queries.
            stats.decoded_ops += 1
            return self._decode_leaf(self.expr.cs, cache, observer)
        out = self._eval(self.expr, cache, observer, cache_probes, compressed, stats)
        return self._materialize(out, cache, observer, stats)

    def _key(self, cs: CompressedIntegerSet) -> tuple[str, str, str] | None:
        return self.keymap.get(id(cs))

    def _decode_leaf(
        self,
        cs: CompressedIntegerSet,
        cache: ArrayCache | None,
        observer: DecodeObserver | None,
    ) -> np.ndarray:
        return decode(cs, cache=cache, key=self._key(cs), observer=observer)

    def _cached(
        self, cs: CompressedIntegerSet, cache: ArrayCache | None
    ) -> np.ndarray | None:
        if cache is None:
            return None
        key = self._key(cs)
        return cache.get(key) if key is not None else None

    def _materialize(
        self,
        value: _EvalResult,
        cache: ArrayCache | None,
        observer: DecodeObserver | None,
        stats: ExecStats,
    ) -> np.ndarray:
        """Positions of an evaluation step's result.

        Original leaves (present in the keymap) decode through the keyed
        cache; anonymous compressed intermediates decompress directly —
        they are query-specific, so caching them would pin memory without
        ever serving a later hit.
        """
        if isinstance(value, np.ndarray):
            return value
        if self._key(value) is not None:
            stats.decoded_ops += 1
            return self._decode_leaf(value, cache, observer)
        return get_codec(value.codec_name).decompress(value)

    @staticmethod
    def _capable(cs: CompressedIntegerSet, cap: Capability) -> bool:
        return cap in get_codec(cs.codec_name).capabilities()

    def _eval(
        self,
        expr: QueryExpression,
        cache: ArrayCache | None,
        observer: DecodeObserver | None,
        cache_probes: bool,
        compressed: bool,
        stats: ExecStats,
    ) -> _EvalResult:
        if isinstance(expr, ops_expr.Leaf):
            return self._eval_leaf(expr.cs, cache, observer, compressed, stats)
        if isinstance(expr, ops_expr.Or):
            return self._eval_or(expr, cache, observer, cache_probes, compressed, stats)
        return self._eval_and(expr, cache, observer, cache_probes, compressed, stats)

    def _eval_leaf(
        self,
        cs: CompressedIntegerSet,
        cache: ArrayCache | None,
        observer: DecodeObserver | None,
        compressed: bool,
        stats: ExecStats,
    ) -> _EvalResult:
        hit = self._cached(cs, cache)
        if hit is not None:
            stats.decoded_ops += 1
            return hit
        if compressed and self._capable(cs, Capability.INTERSECT_COMPRESSED):
            # Defer: the consuming operator decides whether this stays on
            # a compressed kernel or needs positions.
            return cs
        stats.decoded_ops += 1
        return self._decode_leaf(cs, cache, observer)

    def _eval_or(
        self,
        expr: ops_expr.Or,
        cache: ArrayCache | None,
        observer: DecodeObserver | None,
        cache_probes: bool,
        compressed: bool,
        stats: ExecStats,
    ) -> _EvalResult:
        groups, others = or_partition(expr.children)
        if compressed and not others and len(groups) == 1:
            group = groups[0]
            codec = get_codec(group[0].codec_name)
            if Capability.UNION_COMPRESSED in codec.capabilities() and all(
                self._cached(cs, cache) is None for cs in group
            ):
                # Single-codec OR with no cached operands: fold entirely
                # in the compressed domain and hand the compressed union
                # to the consumer (e.g. an enclosing AND's kernels).
                acc = group[0]
                for cs in group[1:]:
                    acc = codec.union_compressed(acc, cs)
                    stats.compressed_ops += 1
                return acc
        result = np.empty(0, dtype=np.int64)
        for group in groups:
            # Cached leaves merge as arrays; the rest stay on the
            # codec's compressed-OR path (union_many).
            cold: list[CompressedIntegerSet] = []
            for cs in group:
                hit = self._cached(cs, cache)
                if hit is not None:
                    result = union_sorted_arrays(result, hit)
                else:
                    cold.append(cs)
            if cold:
                codec = get_codec(cold[0].codec_name)
                result = union_sorted_arrays(result, codec.union_many(cold))
                stats.compressed_ops += 1
        for child in others:
            sub = self._eval(child, cache, observer, cache_probes, compressed, stats)
            result = union_sorted_arrays(
                result, self._materialize(sub, cache, observer, stats)
            )
        return result

    def _eval_and(
        self,
        expr: ops_expr.And,
        cache: ArrayCache | None,
        observer: DecodeObserver | None,
        cache_probes: bool,
        compressed: bool,
        stats: ExecStats,
    ) -> _EvalResult:
        ordered = and_order(expr.children)
        result = self._eval(ordered[0], cache, observer, cache_probes, compressed, stats)
        for child in ordered[1:]:
            if _result_count(result) == 0:
                break
            if isinstance(child, ops_expr.Leaf):
                result = self._and_leaf(
                    result, child.cs, cache, observer, cache_probes, compressed, stats
                )
            else:
                sub = self._eval(
                    child, cache, observer, cache_probes, compressed, stats
                )
                result = self._and_pair(result, sub, cache, observer, compressed, stats)
        return result

    def _and_leaf(
        self,
        acc: _EvalResult,
        cs: CompressedIntegerSet,
        cache: ArrayCache | None,
        observer: DecodeObserver | None,
        cache_probes: bool,
        compressed: bool,
        stats: ExecStats,
    ) -> _EvalResult:
        hit = self._cached(cs, cache)
        if hit is not None:
            stats.decoded_ops += 1
            return intersect_sorted_arrays(
                self._materialize(acc, cache, observer, stats), hit
            )
        if cache_probes:
            # Explicit materialise-through-cache policy: takes precedence
            # over compressed kernels so the steady state is fully cached.
            stats.decoded_ops += 1
            mine = self._decode_leaf(cs, cache, observer)
            return intersect_sorted_arrays(
                self._materialize(acc, cache, observer, stats), mine
            )
        if (
            compressed
            and isinstance(acc, CompressedIntegerSet)
            and acc.codec_name == cs.codec_name
            and self._capable(cs, Capability.INTERSECT_COMPRESSED)
        ):
            stats.compressed_ops += 1
            return get_codec(cs.codec_name).intersect_compressed(acc, cs)
        stats.compressed_ops += 1
        return get_codec(cs.codec_name).intersect_with_array(
            cs, self._materialize(acc, cache, observer, stats)
        )

    def _and_pair(
        self,
        acc: _EvalResult,
        sub: _EvalResult,
        cache: ArrayCache | None,
        observer: DecodeObserver | None,
        compressed: bool,
        stats: ExecStats,
    ) -> _EvalResult:
        if (
            compressed
            and isinstance(acc, CompressedIntegerSet)
            and isinstance(sub, CompressedIntegerSet)
            and acc.codec_name == sub.codec_name
            and self._capable(acc, Capability.INTERSECT_COMPRESSED)
        ):
            stats.compressed_ops += 1
            return get_codec(acc.codec_name).intersect_compressed(acc, sub)
        if isinstance(sub, CompressedIntegerSet) and self._capable(
            sub, Capability.INTERSECT_WITH_ARRAY
        ):
            stats.compressed_ops += 1
            return get_codec(sub.codec_name).intersect_with_array(
                sub, self._materialize(acc, cache, observer, stats)
            )
        return intersect_sorted_arrays(
            self._materialize(acc, cache, observer, stats),
            self._materialize(sub, cache, observer, stats),
        )

    # ------------------------------------------------------------------
    def describe(self) -> dict:
        """JSON-able plan tree showing execution order and strategies."""
        names = {cs_id: key[1] for cs_id, key in self.keymap.items()}

        def walk(expr: QueryExpression) -> dict:
            if isinstance(expr, ops_expr.Leaf):
                return {
                    "op": "leaf",
                    "term": names.get(id(expr.cs), "<anon>"),
                    "codec": expr.cs.codec_name,
                    "n": expr.cs.n,
                }
            if isinstance(expr, ops_expr.Or):
                groups, others = or_partition(expr.children)
                return {
                    "op": "or",
                    "strategy": "compressed-or",
                    "groups": [
                        {
                            "codec": g[0].codec_name,
                            "terms": [names.get(id(cs), "<anon>") for cs in g],
                        }
                        for g in groups
                    ],
                    "children": [walk(c) for c in others],
                }
            return {
                "op": "and",
                "strategy": "svs",
                "order": [walk(c) for c in and_order(expr.children)],
            }

        return {
            "shard": self.shard,
            "terms": self.terms,
            "missing_terms": self.missing_terms,
            "degraded_terms": self.degraded_terms,
            "delta_terms": self.delta_terms,
            "plan": walk(self.expr) if self.expr is not None else {"op": "empty"},
        }


def compile_shard_plan(
    store: PostingStore,
    shard_name: str,
    expression: QueryLike,
    *,
    cache: ArrayCache | None = None,
    observer: DecodeObserver | None = None,
) -> ShardPlan:
    """Resolve a query (AST node or bare term string) against one shard.

    The compile works against one atomic :meth:`Shard.read_state`
    snapshot, so a concurrent compaction can swap the shard's postings
    mid-query without the plan ever mixing generations.  Terms with
    pending delta writes are materialised here — base list decoded
    through *cache*/*observer* (keyed with the term's rewrite
    generation), overlay applied, result wrapped as an uncompressed
    ``"List"`` leaf — so the boolean evaluator below needs no delta
    awareness.  An overlay that fails to merge degrades the term
    (recorded in ``degraded_terms``) instead of failing the query.
    """
    shard = store.shard(shard_name)
    state = shard.read_state()
    plan = ShardPlan(shard=shard_name, expr=None)
    root = parse_query(expression)
    plan.terms = query_terms(root)
    list_codec = get_codec("List") if state.deltas else None

    # Mapped (v3) shards carry a cache epoch — the segment generation at
    # open, carried forward across in-process compactions.  Folding it
    # into the codec slot means a reopened or migrated store can never
    # hit arrays cached against another mapping of the same directory.
    mapped_epoch = getattr(state.postings, "cache_epoch", None)

    def versioned(term: str, codec_name: str) -> tuple[str, str, str]:
        # Compaction bumps a term's generation when it rewrites the
        # list; baking it into the key's codec slot keeps keys 3-tuples
        # (what DecodeCache.invalidate_shard expects) while guaranteeing
        # a rewritten list never hits its predecessor's cached array.
        slot = codec_name
        if mapped_epoch is not None:
            slot = f"{slot}@m{mapped_epoch}"
        ver = state.versions.get(term, 0)
        return (shard_name, term, slot if not ver else f"{slot}#g{ver}")

    def overlay_leaf(term: str, cs: CompressedIntegerSet | None) -> QueryExpression | None:
        """Base ∖ dels ∪ adds, wrapped as an uncompressed-list leaf."""
        if cs is not None:
            inner = _unwrap(cs)
            base = decode(
                inner,
                cache=cache,
                key=versioned(term, inner.codec_name),
                observer=observer,
            )
        else:
            base = np.empty(0, dtype=np.int64)
        merged = base
        revs: list[str] = []
        touched = False
        for seg in state.deltas:
            adds, dels, rev = seg.snapshot(term)
            revs.append(str(rev))
            if not (adds.size or dels.size):
                continue
            touched = True
            if dels.size:
                merged = difference_sorted_arrays(merged, dels)
            if adds.size:
                merged = union_sorted_arrays(merged, adds)
        if not touched and cs is None:
            return None  # overlay was all no-ops; term truly absent
        assert list_codec is not None
        leaf = list_codec.compress(merged)
        ver = state.versions.get(term, 0)
        epoch = "" if mapped_epoch is None else f"m{mapped_epoch}"
        plan.keymap[id(leaf)] = (
            shard_name,
            term,
            f"List@{epoch}g{ver}r{'.'.join(revs)}",
        )
        plan.delta_terms.append(term)
        return ops_expr.Leaf(leaf)

    def build(node: QueryNode) -> QueryExpression | None:
        if isinstance(node, Term):
            cs = state.postings.get(node.name)
            delta_touched = any(d.touches(node.name) for d in state.deltas)
            if delta_touched:
                try:
                    return overlay_leaf(node.name, cs)
                except Exception:  # repro: noqa[REPRO106] -- degrade the term, not the query; recorded in degraded_terms and surfaced as a partial status
                    plan.degraded_terms.append(node.name)
                    return None
            if cs is None:
                if node.name in shard.failed_terms:
                    plan.degraded_terms.append(node.name)
                else:
                    plan.missing_terms.append(node.name)
                return None
            inner = _unwrap(cs)
            plan.keymap[id(inner)] = versioned(node.name, inner.codec_name)
            return ops_expr.Leaf(inner)
        parts = [build(c) for c in node.children]
        if isinstance(node, And):
            if any(p is None for p in parts):
                return None  # ∩ with the empty set is empty
            kept = [p for p in parts if p is not None]
            return kept[0] if len(kept) == 1 else ops_expr.And(*kept)
        kept = [p for p in parts if p is not None]  # ∪ drops empty children
        if not kept:
            return None
        return kept[0] if len(kept) == 1 else ops_expr.Or(*kept)

    plan.expr = build(root)
    return plan


def shard_codec(store: PostingStore, shard_name: str) -> IntegerSetCodec:
    """The codec instance a shard compresses with (explain convenience)."""
    return store.shard(shard_name).codec
