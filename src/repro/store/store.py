"""In-memory posting store: named shards of compressed term lists.

A shard is a named partition of the document space holding one
compressed posting list per term, all under one codec (any registry
member, or an unregistered wrapper like
:class:`repro.hybrid.AdaptiveCodec`).  The layout mirrors how a sharded
search tier deploys the paper's codecs: the universe is split across
shards, queries scatter over shards and gather partial results, and
every decode funnels through :func:`repro.core.decode` so the engine's
cache and metrics see all of it.

Persistence reuses :mod:`repro.core.serialize` — one ``.rpro`` file per
list plus a JSON manifest.  Loading is strict by default; with
``strict=False`` a corrupt list is skipped and recorded (shard stays
serveable, queries touching the lost term come back flagged partial)
instead of taking the whole store down.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping, MutableMapping, NamedTuple

import numpy as np

from repro.core.base import CompressedIntegerSet, IntegerSetCodec
from repro.core.decode import ArrayCache, DecodeObserver, decode
from repro.core.errors import ReproError
from repro.core.registry import get_codec
from repro.core.serialize import dump, load
from repro.store.errors import (
    DuplicateShardError,
    DuplicateTermError,
    ManifestParamsError,
    MappedSegmentError,
    ShardLoadError,
    StoreError,
    UnknownShardError,
)

_MANIFEST = "manifest.json"
#: Version 2 added per-shard codec ``params`` (full configuration, not
#: just the name) and the store ``generation`` counter; version-1
#: manifests are still readable.  Version 3 replaces the per-term
#: ``terms`` file map with one memory-mapped ``segment`` file per shard
#: (:mod:`repro.store.mapped`); 1 and 2 remain readable, and v2 is
#: still the default *write* format — v3 is opt-in via
#: ``save(mapped=True)`` / :func:`migrate_store`.
_MANIFEST_VERSION = 2
_MANIFEST_VERSION_MAPPED = 3
_READABLE_MANIFEST_VERSIONS = (1, 2, 3)


def resolve_codec(spec: str | IntegerSetCodec) -> IntegerSetCodec:
    """A codec instance from a registry name, ``"Adaptive"``, or instance."""
    if isinstance(spec, IntegerSetCodec):
        return spec
    if spec == "Adaptive":
        # The adaptive hybrid is deliberately unregistered (it would
        # double-count its inner codecs in every sweep) but is a
        # first-class store codec.
        from repro.hybrid import AdaptiveCodec

        return AdaptiveCodec()
    return get_codec(spec)


class ShardState(NamedTuple):
    """An atomic read snapshot of one shard.

    ``versions`` maps term → monotonic rewrite counter (absent = 0);
    compaction bumps it for every term it re-encodes, and the query plan
    folds it into decode-cache keys so a rewritten list can never be
    served from its predecessor's cached array.
    """

    postings: Mapping[str, CompressedIntegerSet]
    #: Pending :class:`repro.store.segments.DeltaSegment`\ s, oldest first.
    deltas: tuple
    versions: Mapping[str, int]


_NO_VERSIONS: Mapping[str, int] = {}


@dataclass
class Shard:
    """One partition: term → compressed list, all under one codec."""

    name: str
    codec: IntegerSetCodec
    universe: int | None = None
    #: A plain dict for in-heap shards; a lazy
    #: :class:`repro.store.mapped.MappedPostings` for mapped (v3) ones.
    postings: MutableMapping[str, CompressedIntegerSet] = field(
        default_factory=dict
    )
    #: Terms lost to corruption during a lenient load: term → reason.
    failed_terms: dict[str, str] = field(default_factory=dict)

    def add(
        self,
        term: str,
        values: Iterable[int] | np.ndarray,
        universe: int | None = None,
    ) -> CompressedIntegerSet:
        """Compress and store one posting list under *term*."""
        if term in self.postings:
            raise DuplicateTermError(
                f"term {term!r} already present in shard {self.name!r}"
            )
        cs = self.codec.compress(values, universe=universe or self.universe)
        self.postings[term] = cs
        return cs

    def add_compressed(self, term: str, cs: CompressedIntegerSet) -> None:
        """Store an already-compressed list (must match the shard codec)."""
        if term in self.postings:
            raise DuplicateTermError(
                f"term {term!r} already present in shard {self.name!r}"
            )
        if cs.codec_name != self.codec.name:
            raise ReproError(
                f"shard {self.name!r} holds {self.codec.name!r} lists, "
                f"got {cs.codec_name!r}"
            )
        self.postings[term] = cs

    @property
    def size_bytes(self) -> int:
        # Mapped shards answer from the entry table (vectorised, no
        # materialisation); summing over a MappedPostings would parse
        # every term and defeat the lazy open.
        fast = getattr(self.postings, "total_size_bytes", None)
        if fast is not None:
            return fast()
        return sum(cs.size_bytes for cs in self.postings.values())

    @property
    def n_postings(self) -> int:
        fast = getattr(self.postings, "total_postings", None)
        if fast is not None:
            return fast()
        return sum(cs.n for cs in self.postings.values())

    # ------------------------------------------------------------------
    # Read-path hook the writable subclass overrides
    # ------------------------------------------------------------------
    def read_state(self) -> "ShardState":
        """One consistent snapshot of (base postings, deltas, versions).

        A read-only shard has no deltas and no rewrites, so the live
        dict is the snapshot.  :class:`repro.store.segments.WritableShard`
        overrides this to hand out the base map, the pending delta
        chain, and the per-term rewrite counters *atomically* (one lock
        covers the triple, and compaction swaps all three references
        under the same lock) — which is what makes compaction invisible
        to in-flight queries: a plan never mixes a new base with old
        versions or vice versa.
        """
        return ShardState(self.postings, (), _NO_VERSIONS)


class PostingStore:
    """Named shards plus the cache-aware decode path over them."""

    def __init__(self) -> None:
        self._shards: dict[str, Shard] = {}
        #: Errors swallowed by the last lenient :meth:`load` (corrupt
        #: lists as :class:`ShardLoadError`, codec-configuration drift as
        #: :class:`ManifestParamsError`).
        self.load_errors: list[StoreError] = []
        #: Compaction generation recorded in the manifest (0 = as-built).
        self.generation = 0
        #: Build-path mutation counter (shards created/dropped, lists
        #: added through the store); feeds :meth:`read_version`.
        self._mutations = 0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def create_shard(
        self,
        name: str,
        codec: str | IntegerSetCodec = "Roaring",
        universe: int | None = None,
    ) -> Shard:
        if name in self._shards:
            raise DuplicateShardError(f"shard {name!r} already exists")
        shard = Shard(name=name, codec=resolve_codec(codec), universe=universe)
        self._shards[name] = shard
        self._mutations += 1
        return shard

    def add_list(
        self,
        shard: str,
        term: str,
        values: Iterable[int] | np.ndarray,
        universe: int | None = None,
    ) -> CompressedIntegerSet:
        cs = self.shard(shard).add(term, values, universe=universe)
        self._mutations += 1
        return cs

    def drop_shard(self, name: str) -> None:
        if name not in self._shards:
            raise UnknownShardError(f"unknown shard {name!r}")
        del self._shards[name]
        self._mutations += 1

    def read_version(self) -> tuple[int, ...]:
        """A hashable version tag that changes whenever read results could.

        Components: the compaction generation, the build-path mutation
        counter, and the total term count (which also catches lists added
        directly on a :class:`Shard`, bypassing :meth:`add_list`).  The
        plan-result cache embeds this tag in its keys, which is what makes
        its invalidation free: any store change moves every key, so stale
        entries become unreachable and age out of the LRU.
        :class:`~repro.store.segments.WritablePostingStore` extends the
        tag with its ingest counter so delta writes shift it too.
        """
        total_terms = sum(len(s.postings) for s in self._shards.values())
        return (self.generation, self._mutations, total_terms)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard(self, name: str) -> Shard:
        try:
            return self._shards[name]
        except KeyError:
            known = ", ".join(sorted(self._shards)) or "<none>"
            raise UnknownShardError(
                f"unknown shard {name!r}; known: {known}"
            ) from None

    def shard_names(self) -> list[str]:
        return list(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def get(self, shard: str, term: str) -> CompressedIntegerSet | None:
        """The compressed list for (shard, term), or None when absent."""
        return self.shard(shard).postings.get(term)

    def stats(self) -> dict:
        """JSON-able inventory: shards, terms, postings, wire bytes."""
        return {
            "shards": {
                s.name: {
                    "codec": s.codec.name,
                    "terms": len(s.postings),
                    "postings": s.n_postings,
                    "size_bytes": s.size_bytes,
                    "failed_terms": sorted(s.failed_terms),
                }
                for s in self._shards.values()
            },
            "total_terms": sum(len(s.postings) for s in self._shards.values()),
            "total_size_bytes": sum(s.size_bytes for s in self._shards.values()),
        }

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_term(
        self,
        shard: str,
        term: str,
        *,
        cache: ArrayCache | None = None,
        observer: DecodeObserver | None = None,
    ) -> np.ndarray:
        """Materialise one term's postings through the cache-aware path.

        A term absent from the shard decodes to an empty array — the
        standard IR convention for partitioned indexes, where each shard
        holds only the terms its documents mention.

        The cache key folds the term's rewrite generation into the codec
        slot (the same ``codec#gN`` scheme as ``plan.versioned``): a
        term compaction re-encodes under the *same* codec must never be
        served from its predecessor's cached array.
        """
        sh = self.shard(shard)
        state = sh.read_state()
        cs = state.postings.get(term)
        if cs is None:
            return np.empty(0, dtype=np.int64)
        slot = cs.codec_name
        epoch = getattr(state.postings, "cache_epoch", None)
        if epoch is not None:
            # Mapped shard: the epoch distinguishes one mapping of a
            # directory from any other (reopen, migration), mirroring
            # ``plan.versioned`` — same key, same cached array.
            slot = f"{slot}@m{epoch}"
        ver = state.versions.get(term, 0)
        versioned_codec = slot if not ver else f"{slot}#g{ver}"
        return decode(
            cs,
            codec=sh.codec,
            cache=cache,
            key=(shard, term, versioned_codec),
            observer=observer,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | os.PathLike, *, mapped: bool = False) -> None:
        """Write every shard under *directory* (manifest + segment files).

        The manifest records each shard codec's full configuration via
        :meth:`IntegerSetCodec.params`, and is written atomically (temp
        file + rename) so a reader never observes a half-written
        manifest.

        The default layout (manifest version 2) is one ``.rpro`` file
        per term.  With ``mapped=True`` the store is written in the v3
        memory-mapped layout instead — one ``.rpro3`` segment per shard
        (manifest version 3, ``segment`` entry in place of the ``terms``
        map), openable with zero per-term parsing; see
        :mod:`repro.store.mapped` and ``docs/segment_format.md``.
        """
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        manifest = manifest_dict(self)
        if mapped:
            from repro.store.mapped import MAPPED_SUFFIX, write_mapped_segment

            manifest["version"] = _MANIFEST_VERSION_MAPPED
            for shard in self._shards.values():
                shard_dir = os.path.join(directory, shard.name)
                os.makedirs(shard_dir, exist_ok=True)
                rel = os.path.join(
                    shard.name, f"segment-g{self.generation:06d}{MAPPED_SUFFIX}"
                )
                write_mapped_segment(
                    os.path.join(directory, rel),
                    shard.postings.items(),
                    generation=self.generation,
                )
                manifest["shards"][shard.name]["segment"] = rel
        else:
            for shard in self._shards.values():
                shard_dir = os.path.join(directory, shard.name)
                os.makedirs(shard_dir, exist_ok=True)
                terms: dict[str, str] = {}
                for i, (term, cs) in enumerate(sorted(shard.postings.items())):
                    rel = os.path.join(shard.name, f"{i:06d}.rpro")
                    dump(cs, os.path.join(directory, rel))
                    terms[term] = rel
                manifest["shards"][shard.name]["terms"] = terms
        write_manifest(directory, manifest)

    @classmethod
    def load(
        cls, directory: str | os.PathLike, *, strict: bool = True
    ) -> "PostingStore":
        """Rebuild a store written by :meth:`save`.

        Args:
            directory: the save directory.
            strict: when True (default) the first corrupt list raises its
                underlying error wrapped in :class:`ShardLoadError`, and
                a shard whose manifest codec params disagree with the
                registry's configuration raises
                :class:`ManifestParamsError`; when False both are
                recorded in ``store.load_errors`` (corrupt lists also in
                the owning shard's ``failed_terms``) and loading
                continues.
        """
        store = cls()
        load_manifest_into(store, directory, strict=strict)
        return store


# ----------------------------------------------------------------------
# Manifest plumbing (shared with repro.store.segments)
# ----------------------------------------------------------------------
def manifest_dict(store: PostingStore) -> dict:
    """The store's manifest skeleton — per-shard ``terms`` filled by callers."""
    return {
        "version": _MANIFEST_VERSION,
        "generation": store.generation,
        "shards": {
            shard.name: {
                "codec": shard.codec.name,
                "params": shard.codec.params(),
                "universe": shard.universe,
                "terms": {},
            }
            for shard in (store.shard(n) for n in store.shard_names())
        },
    }


def write_manifest(directory: str, manifest: dict) -> None:
    """Atomically replace the manifest: temp file + rename + dir fsync."""
    from repro.store.wal import _fsync_dir

    path = os.path.join(directory, _MANIFEST)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(directory)


def manifest_path(directory: str | os.PathLike) -> str:
    return os.path.join(os.fspath(directory), _MANIFEST)


def verify_codec_params(
    codec: IntegerSetCodec, manifest_params: Mapping | None
) -> None:
    """Raise :class:`ManifestParamsError` when the saved configuration
    disagrees with how the registry (or Adaptive) instantiates the codec.

    Version-1 manifests carry no params (``None``): nothing to verify.
    """
    if manifest_params is None:
        return
    actual = codec.params()
    if dict(manifest_params) != actual:
        raise ManifestParamsError(codec.name, dict(manifest_params), actual)


def load_manifest_into(
    store: PostingStore, directory: str | os.PathLike, *, strict: bool = True
) -> dict:
    """Populate *store* from a saved manifest; returns the manifest dict.

    Shared by :meth:`PostingStore.load` and the writable store's
    recovery path (which replays the WAL on top afterwards).
    """
    directory = os.fspath(directory)
    with open(manifest_path(directory)) as fh:
        manifest = json.load(fh)
    if manifest.get("version") not in _READABLE_MANIFEST_VERSIONS:
        raise ReproError(
            f"unsupported store manifest version {manifest.get('version')!r}"
        )
    store.generation = int(manifest.get("generation", 0))
    for name, spec in manifest["shards"].items():
        shard = store.create_shard(
            name, codec=spec["codec"], universe=spec["universe"]
        )
        try:
            verify_codec_params(shard.codec, spec.get("params"))
        except ManifestParamsError as err:
            if strict:
                raise
            store.load_errors.append(err)
        if spec.get("segment") is not None:
            _attach_mapped_shard(store, shard, directory, spec, strict=strict)
            continue
        for term, rel in spec.get("terms", {}).items():
            path = os.path.join(directory, rel)
            try:
                shard.postings[term] = load(path)
            except Exception as exc:
                err2 = ShardLoadError(name, term, path, exc)
                if strict:
                    raise err2 from exc
                store.load_errors.append(err2)
                shard.failed_terms[term] = str(exc)
    return manifest


def _attach_mapped_shard(
    store: PostingStore,
    shard: Shard,
    directory: str,
    spec: Mapping,
    *,
    strict: bool,
) -> None:
    """Mount one v3 shard: map the segment, install the lazy postings view.

    No per-term work happens here — :class:`repro.store.mapped.MappedSegment`
    validates structure (and, strict, the metadata CRC) in O(file) C-speed
    passes, and terms materialise lazily on first access.  A lenient open
    of a damaged segment degrades only the affected terms (pre-marked
    bounds failures land in ``failed_terms`` now; payload damage lands
    there at first touch); whole-file damage leaves the shard empty with
    the error recorded, mirroring the v2 lenient contract.
    """
    from repro.store.mapped import MappedPostings, MappedSegment

    path = os.path.join(directory, spec["segment"])
    try:
        segment = MappedSegment.open(path, strict=strict)
    except MappedSegmentError as err:
        if strict:
            raise
        store.load_errors.append(err)
        return
    shard.postings = MappedPostings(
        segment,
        strict=strict,
        cache_epoch=segment.generation,
        failed_sink=shard.failed_terms,
    )
    for term, reason in shard.failed_terms.items():
        store.load_errors.append(
            ShardLoadError(shard.name, term, path, MappedSegmentError(path, reason, term=term))
        )


def migrate_store(directory: str | os.PathLike, *, strict: bool = True) -> dict:
    """One-shot, in-place migration of a legacy (v1/v2) store to v3.

    Pending WAL files (a writable store closed mid-stream) are folded in
    first via a compaction, so no acknowledged write is lost.  The store
    is then rewritten in the mapped layout and the legacy per-term
    ``.rpro`` files are deleted.  Idempotent: migrating a v3 store is a
    no-op.  Returns a summary dict (``shards``, ``terms``,
    ``segment_bytes``, ``removed_files``).
    """
    directory = os.fspath(directory)
    with open(manifest_path(directory)) as fh:
        version = json.load(fh).get("version")
    if version == _MANIFEST_VERSION_MAPPED:
        store = PostingStore.load(directory, strict=strict)
        return {
            "already_mapped": True,
            "shards": len(store),
            "terms": sum(len(store.shard(n).postings) for n in store.shard_names()),
            "segment_bytes": 0,
            "removed_files": 0,
        }
    if any(fname.startswith("wal-") for fname in os.listdir(directory)):
        from repro.store.segments import WritablePostingStore

        writable = WritablePostingStore.open(directory, strict=strict)
        writable.close(compact=True)
    store = PostingStore.load(directory, strict=strict)
    legacy: list[str] = []
    for root, _dirs, files in os.walk(directory):
        legacy.extend(
            os.path.join(root, f) for f in files if f.endswith(".rpro")
        )
    store.save(directory, mapped=True)
    for path in legacy:
        try:
            os.unlink(path)
        except OSError:
            pass
    segment_bytes = 0
    for root, _dirs, files in os.walk(directory):
        segment_bytes += sum(
            os.path.getsize(os.path.join(root, f))
            for f in files
            if f.endswith(".rpro3")
        )
    return {
        "already_mapped": False,
        "shards": len(store),
        "terms": sum(len(store.shard(n).postings) for n in store.shard_names()),
        "segment_bytes": segment_bytes,
        "removed_files": len(legacy),
    }
