"""In-memory posting store: named shards of compressed term lists.

A shard is a named partition of the document space holding one
compressed posting list per term, all under one codec (any registry
member, or an unregistered wrapper like
:class:`repro.hybrid.AdaptiveCodec`).  The layout mirrors how a sharded
search tier deploys the paper's codecs: the universe is split across
shards, queries scatter over shards and gather partial results, and
every decode funnels through :func:`repro.core.decode` so the engine's
cache and metrics see all of it.

Persistence reuses :mod:`repro.core.serialize` — one ``.rpro`` file per
list plus a JSON manifest.  Loading is strict by default; with
``strict=False`` a corrupt list is skipped and recorded (shard stays
serveable, queries touching the lost term come back flagged partial)
instead of taking the whole store down.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping, NamedTuple

import numpy as np

from repro.core.base import CompressedIntegerSet, IntegerSetCodec
from repro.core.decode import ArrayCache, DecodeObserver, decode
from repro.core.errors import ReproError
from repro.core.registry import get_codec
from repro.core.serialize import dump, load
from repro.store.errors import (
    DuplicateShardError,
    DuplicateTermError,
    ManifestParamsError,
    ShardLoadError,
    StoreError,
    UnknownShardError,
)

_MANIFEST = "manifest.json"
#: Version 2 added per-shard codec ``params`` (full configuration, not
#: just the name) and the store ``generation`` counter; version-1
#: manifests are still readable.
_MANIFEST_VERSION = 2
_READABLE_MANIFEST_VERSIONS = (1, 2)


def resolve_codec(spec: str | IntegerSetCodec) -> IntegerSetCodec:
    """A codec instance from a registry name, ``"Adaptive"``, or instance."""
    if isinstance(spec, IntegerSetCodec):
        return spec
    if spec == "Adaptive":
        # The adaptive hybrid is deliberately unregistered (it would
        # double-count its inner codecs in every sweep) but is a
        # first-class store codec.
        from repro.hybrid import AdaptiveCodec

        return AdaptiveCodec()
    return get_codec(spec)


class ShardState(NamedTuple):
    """An atomic read snapshot of one shard.

    ``versions`` maps term → monotonic rewrite counter (absent = 0);
    compaction bumps it for every term it re-encodes, and the query plan
    folds it into decode-cache keys so a rewritten list can never be
    served from its predecessor's cached array.
    """

    postings: Mapping[str, CompressedIntegerSet]
    #: Pending :class:`repro.store.segments.DeltaSegment`\ s, oldest first.
    deltas: tuple
    versions: Mapping[str, int]


_NO_VERSIONS: Mapping[str, int] = {}


@dataclass
class Shard:
    """One partition: term → compressed list, all under one codec."""

    name: str
    codec: IntegerSetCodec
    universe: int | None = None
    postings: dict[str, CompressedIntegerSet] = field(default_factory=dict)
    #: Terms lost to corruption during a lenient load: term → reason.
    failed_terms: dict[str, str] = field(default_factory=dict)

    def add(
        self,
        term: str,
        values: Iterable[int] | np.ndarray,
        universe: int | None = None,
    ) -> CompressedIntegerSet:
        """Compress and store one posting list under *term*."""
        if term in self.postings:
            raise DuplicateTermError(
                f"term {term!r} already present in shard {self.name!r}"
            )
        cs = self.codec.compress(values, universe=universe or self.universe)
        self.postings[term] = cs
        return cs

    def add_compressed(self, term: str, cs: CompressedIntegerSet) -> None:
        """Store an already-compressed list (must match the shard codec)."""
        if term in self.postings:
            raise DuplicateTermError(
                f"term {term!r} already present in shard {self.name!r}"
            )
        if cs.codec_name != self.codec.name:
            raise ReproError(
                f"shard {self.name!r} holds {self.codec.name!r} lists, "
                f"got {cs.codec_name!r}"
            )
        self.postings[term] = cs

    @property
    def size_bytes(self) -> int:
        return sum(cs.size_bytes for cs in self.postings.values())

    @property
    def n_postings(self) -> int:
        return sum(cs.n for cs in self.postings.values())

    # ------------------------------------------------------------------
    # Read-path hook the writable subclass overrides
    # ------------------------------------------------------------------
    def read_state(self) -> "ShardState":
        """One consistent snapshot of (base postings, deltas, versions).

        A read-only shard has no deltas and no rewrites, so the live
        dict is the snapshot.  :class:`repro.store.segments.WritableShard`
        overrides this to hand out the base map, the pending delta
        chain, and the per-term rewrite counters *atomically* (one lock
        covers the triple, and compaction swaps all three references
        under the same lock) — which is what makes compaction invisible
        to in-flight queries: a plan never mixes a new base with old
        versions or vice versa.
        """
        return ShardState(self.postings, (), _NO_VERSIONS)


class PostingStore:
    """Named shards plus the cache-aware decode path over them."""

    def __init__(self) -> None:
        self._shards: dict[str, Shard] = {}
        #: Errors swallowed by the last lenient :meth:`load` (corrupt
        #: lists as :class:`ShardLoadError`, codec-configuration drift as
        #: :class:`ManifestParamsError`).
        self.load_errors: list[StoreError] = []
        #: Compaction generation recorded in the manifest (0 = as-built).
        self.generation = 0
        #: Build-path mutation counter (shards created/dropped, lists
        #: added through the store); feeds :meth:`read_version`.
        self._mutations = 0

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def create_shard(
        self,
        name: str,
        codec: str | IntegerSetCodec = "Roaring",
        universe: int | None = None,
    ) -> Shard:
        if name in self._shards:
            raise DuplicateShardError(f"shard {name!r} already exists")
        shard = Shard(name=name, codec=resolve_codec(codec), universe=universe)
        self._shards[name] = shard
        self._mutations += 1
        return shard

    def add_list(
        self,
        shard: str,
        term: str,
        values: Iterable[int] | np.ndarray,
        universe: int | None = None,
    ) -> CompressedIntegerSet:
        cs = self.shard(shard).add(term, values, universe=universe)
        self._mutations += 1
        return cs

    def drop_shard(self, name: str) -> None:
        if name not in self._shards:
            raise UnknownShardError(f"unknown shard {name!r}")
        del self._shards[name]
        self._mutations += 1

    def read_version(self) -> tuple[int, ...]:
        """A hashable version tag that changes whenever read results could.

        Components: the compaction generation, the build-path mutation
        counter, and the total term count (which also catches lists added
        directly on a :class:`Shard`, bypassing :meth:`add_list`).  The
        plan-result cache embeds this tag in its keys, which is what makes
        its invalidation free: any store change moves every key, so stale
        entries become unreachable and age out of the LRU.
        :class:`~repro.store.segments.WritablePostingStore` extends the
        tag with its ingest counter so delta writes shift it too.
        """
        total_terms = sum(len(s.postings) for s in self._shards.values())
        return (self.generation, self._mutations, total_terms)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard(self, name: str) -> Shard:
        try:
            return self._shards[name]
        except KeyError:
            known = ", ".join(sorted(self._shards)) or "<none>"
            raise UnknownShardError(
                f"unknown shard {name!r}; known: {known}"
            ) from None

    def shard_names(self) -> list[str]:
        return list(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def get(self, shard: str, term: str) -> CompressedIntegerSet | None:
        """The compressed list for (shard, term), or None when absent."""
        return self.shard(shard).postings.get(term)

    def stats(self) -> dict:
        """JSON-able inventory: shards, terms, postings, wire bytes."""
        return {
            "shards": {
                s.name: {
                    "codec": s.codec.name,
                    "terms": len(s.postings),
                    "postings": s.n_postings,
                    "size_bytes": s.size_bytes,
                    "failed_terms": sorted(s.failed_terms),
                }
                for s in self._shards.values()
            },
            "total_terms": sum(len(s.postings) for s in self._shards.values()),
            "total_size_bytes": sum(s.size_bytes for s in self._shards.values()),
        }

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_term(
        self,
        shard: str,
        term: str,
        *,
        cache: ArrayCache | None = None,
        observer: DecodeObserver | None = None,
    ) -> np.ndarray:
        """Materialise one term's postings through the cache-aware path.

        A term absent from the shard decodes to an empty array — the
        standard IR convention for partitioned indexes, where each shard
        holds only the terms its documents mention.

        The cache key folds the term's rewrite generation into the codec
        slot (the same ``codec#gN`` scheme as ``plan.versioned``): a
        term compaction re-encodes under the *same* codec must never be
        served from its predecessor's cached array.
        """
        sh = self.shard(shard)
        state = sh.read_state()
        cs = state.postings.get(term)
        if cs is None:
            return np.empty(0, dtype=np.int64)
        ver = state.versions.get(term, 0)
        versioned_codec = cs.codec_name if not ver else f"{cs.codec_name}#g{ver}"
        return decode(
            cs,
            codec=sh.codec,
            cache=cache,
            key=(shard, term, versioned_codec),
            observer=observer,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | os.PathLike) -> None:
        """Write every shard under *directory* (manifest + .rpro files).

        The manifest (version 2) records each shard codec's full
        configuration via :meth:`IntegerSetCodec.params`, and is written
        atomically (temp file + rename) so a reader never observes a
        half-written manifest.
        """
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        manifest = manifest_dict(self)
        for shard in self._shards.values():
            shard_dir = os.path.join(directory, shard.name)
            os.makedirs(shard_dir, exist_ok=True)
            terms: dict[str, str] = {}
            for i, (term, cs) in enumerate(sorted(shard.postings.items())):
                rel = os.path.join(shard.name, f"{i:06d}.rpro")
                dump(cs, os.path.join(directory, rel))
                terms[term] = rel
            manifest["shards"][shard.name]["terms"] = terms
        write_manifest(directory, manifest)

    @classmethod
    def load(
        cls, directory: str | os.PathLike, *, strict: bool = True
    ) -> "PostingStore":
        """Rebuild a store written by :meth:`save`.

        Args:
            directory: the save directory.
            strict: when True (default) the first corrupt list raises its
                underlying error wrapped in :class:`ShardLoadError`, and
                a shard whose manifest codec params disagree with the
                registry's configuration raises
                :class:`ManifestParamsError`; when False both are
                recorded in ``store.load_errors`` (corrupt lists also in
                the owning shard's ``failed_terms``) and loading
                continues.
        """
        store = cls()
        load_manifest_into(store, directory, strict=strict)
        return store


# ----------------------------------------------------------------------
# Manifest plumbing (shared with repro.store.segments)
# ----------------------------------------------------------------------
def manifest_dict(store: PostingStore) -> dict:
    """The store's manifest skeleton — per-shard ``terms`` filled by callers."""
    return {
        "version": _MANIFEST_VERSION,
        "generation": store.generation,
        "shards": {
            shard.name: {
                "codec": shard.codec.name,
                "params": shard.codec.params(),
                "universe": shard.universe,
                "terms": {},
            }
            for shard in (store.shard(n) for n in store.shard_names())
        },
    }


def write_manifest(directory: str, manifest: dict) -> None:
    """Atomically replace the manifest: temp file + rename + dir fsync."""
    from repro.store.wal import _fsync_dir

    path = os.path.join(directory, _MANIFEST)
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        json.dump(manifest, fh, indent=1, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(directory)


def manifest_path(directory: str | os.PathLike) -> str:
    return os.path.join(os.fspath(directory), _MANIFEST)


def verify_codec_params(
    codec: IntegerSetCodec, manifest_params: Mapping | None
) -> None:
    """Raise :class:`ManifestParamsError` when the saved configuration
    disagrees with how the registry (or Adaptive) instantiates the codec.

    Version-1 manifests carry no params (``None``): nothing to verify.
    """
    if manifest_params is None:
        return
    actual = codec.params()
    if dict(manifest_params) != actual:
        raise ManifestParamsError(codec.name, dict(manifest_params), actual)


def load_manifest_into(
    store: PostingStore, directory: str | os.PathLike, *, strict: bool = True
) -> dict:
    """Populate *store* from a saved manifest; returns the manifest dict.

    Shared by :meth:`PostingStore.load` and the writable store's
    recovery path (which replays the WAL on top afterwards).
    """
    directory = os.fspath(directory)
    with open(manifest_path(directory)) as fh:
        manifest = json.load(fh)
    if manifest.get("version") not in _READABLE_MANIFEST_VERSIONS:
        raise ReproError(
            f"unsupported store manifest version {manifest.get('version')!r}"
        )
    store.generation = int(manifest.get("generation", 0))
    for name, spec in manifest["shards"].items():
        shard = store.create_shard(
            name, codec=spec["codec"], universe=spec["universe"]
        )
        try:
            verify_codec_params(shard.codec, spec.get("params"))
        except ManifestParamsError as err:
            if strict:
                raise
            store.load_errors.append(err)
        for term, rel in spec["terms"].items():
            path = os.path.join(directory, rel)
            try:
                shard.postings[term] = load(path)
            except Exception as exc:
                err2 = ShardLoadError(name, term, path, exc)
                if strict:
                    raise err2 from exc
                store.load_errors.append(err2)
                shard.failed_terms[term] = str(exc)
    return manifest
