"""In-memory posting store: named shards of compressed term lists.

A shard is a named partition of the document space holding one
compressed posting list per term, all under one codec (any registry
member, or an unregistered wrapper like
:class:`repro.hybrid.AdaptiveCodec`).  The layout mirrors how a sharded
search tier deploys the paper's codecs: the universe is split across
shards, queries scatter over shards and gather partial results, and
every decode funnels through :func:`repro.core.decode` so the engine's
cache and metrics see all of it.

Persistence reuses :mod:`repro.core.serialize` — one ``.rpro`` file per
list plus a JSON manifest.  Loading is strict by default; with
``strict=False`` a corrupt list is skipped and recorded (shard stays
serveable, queries touching the lost term come back flagged partial)
instead of taking the whole store down.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from repro.core.base import CompressedIntegerSet, IntegerSetCodec
from repro.core.decode import ArrayCache, DecodeObserver, decode
from repro.core.errors import ReproError
from repro.core.registry import get_codec
from repro.core.serialize import dump, load
from repro.store.errors import (
    DuplicateShardError,
    DuplicateTermError,
    ShardLoadError,
    UnknownShardError,
)

_MANIFEST = "manifest.json"
_MANIFEST_VERSION = 1


def resolve_codec(spec: str | IntegerSetCodec) -> IntegerSetCodec:
    """A codec instance from a registry name, ``"Adaptive"``, or instance."""
    if isinstance(spec, IntegerSetCodec):
        return spec
    if spec == "Adaptive":
        # The adaptive hybrid is deliberately unregistered (it would
        # double-count its inner codecs in every sweep) but is a
        # first-class store codec.
        from repro.hybrid import AdaptiveCodec

        return AdaptiveCodec()
    return get_codec(spec)


@dataclass
class Shard:
    """One partition: term → compressed list, all under one codec."""

    name: str
    codec: IntegerSetCodec
    universe: int | None = None
    postings: dict[str, CompressedIntegerSet] = field(default_factory=dict)
    #: Terms lost to corruption during a lenient load: term → reason.
    failed_terms: dict[str, str] = field(default_factory=dict)

    def add(
        self,
        term: str,
        values: Iterable[int] | np.ndarray,
        universe: int | None = None,
    ) -> CompressedIntegerSet:
        """Compress and store one posting list under *term*."""
        if term in self.postings:
            raise DuplicateTermError(
                f"term {term!r} already present in shard {self.name!r}"
            )
        cs = self.codec.compress(values, universe=universe or self.universe)
        self.postings[term] = cs
        return cs

    def add_compressed(self, term: str, cs: CompressedIntegerSet) -> None:
        """Store an already-compressed list (must match the shard codec)."""
        if term in self.postings:
            raise DuplicateTermError(
                f"term {term!r} already present in shard {self.name!r}"
            )
        if cs.codec_name != self.codec.name:
            raise ReproError(
                f"shard {self.name!r} holds {self.codec.name!r} lists, "
                f"got {cs.codec_name!r}"
            )
        self.postings[term] = cs

    @property
    def size_bytes(self) -> int:
        return sum(cs.size_bytes for cs in self.postings.values())

    @property
    def n_postings(self) -> int:
        return sum(cs.n for cs in self.postings.values())


class PostingStore:
    """Named shards plus the cache-aware decode path over them."""

    def __init__(self) -> None:
        self._shards: dict[str, Shard] = {}
        #: Errors swallowed by the last lenient :meth:`load`.
        self.load_errors: list[ShardLoadError] = []

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def create_shard(
        self,
        name: str,
        codec: str | IntegerSetCodec = "Roaring",
        universe: int | None = None,
    ) -> Shard:
        if name in self._shards:
            raise DuplicateShardError(f"shard {name!r} already exists")
        shard = Shard(name=name, codec=resolve_codec(codec), universe=universe)
        self._shards[name] = shard
        return shard

    def add_list(
        self,
        shard: str,
        term: str,
        values: Iterable[int] | np.ndarray,
        universe: int | None = None,
    ) -> CompressedIntegerSet:
        return self.shard(shard).add(term, values, universe=universe)

    def drop_shard(self, name: str) -> None:
        if name not in self._shards:
            raise UnknownShardError(f"unknown shard {name!r}")
        del self._shards[name]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard(self, name: str) -> Shard:
        try:
            return self._shards[name]
        except KeyError:
            known = ", ".join(sorted(self._shards)) or "<none>"
            raise UnknownShardError(
                f"unknown shard {name!r}; known: {known}"
            ) from None

    def shard_names(self) -> list[str]:
        return list(self._shards)

    def __contains__(self, name: str) -> bool:
        return name in self._shards

    def __len__(self) -> int:
        return len(self._shards)

    def get(self, shard: str, term: str) -> CompressedIntegerSet | None:
        """The compressed list for (shard, term), or None when absent."""
        return self.shard(shard).postings.get(term)

    def stats(self) -> dict:
        """JSON-able inventory: shards, terms, postings, wire bytes."""
        return {
            "shards": {
                s.name: {
                    "codec": s.codec.name,
                    "terms": len(s.postings),
                    "postings": s.n_postings,
                    "size_bytes": s.size_bytes,
                    "failed_terms": sorted(s.failed_terms),
                }
                for s in self._shards.values()
            },
            "total_terms": sum(len(s.postings) for s in self._shards.values()),
            "total_size_bytes": sum(s.size_bytes for s in self._shards.values()),
        }

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode_term(
        self,
        shard: str,
        term: str,
        *,
        cache: ArrayCache | None = None,
        observer: DecodeObserver | None = None,
    ) -> np.ndarray:
        """Materialise one term's postings through the cache-aware path.

        A term absent from the shard decodes to an empty array — the
        standard IR convention for partitioned indexes, where each shard
        holds only the terms its documents mention.
        """
        sh = self.shard(shard)
        cs = sh.postings.get(term)
        if cs is None:
            return np.empty(0, dtype=np.int64)
        return decode(
            cs,
            codec=sh.codec,
            cache=cache,
            key=(shard, term, cs.codec_name),
            observer=observer,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | os.PathLike) -> None:
        """Write every shard under *directory* (manifest + .rpro files)."""
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        manifest: dict = {"version": _MANIFEST_VERSION, "shards": {}}
        for shard in self._shards.values():
            shard_dir = os.path.join(directory, shard.name)
            os.makedirs(shard_dir, exist_ok=True)
            terms: dict[str, str] = {}
            for i, (term, cs) in enumerate(sorted(shard.postings.items())):
                rel = os.path.join(shard.name, f"{i:06d}.rpro")
                dump(cs, os.path.join(directory, rel))
                terms[term] = rel
            manifest["shards"][shard.name] = {
                "codec": shard.codec.name,
                "universe": shard.universe,
                "terms": terms,
            }
        with open(os.path.join(directory, _MANIFEST), "w") as fh:
            json.dump(manifest, fh, indent=1, sort_keys=True)

    @classmethod
    def load(
        cls, directory: str | os.PathLike, *, strict: bool = True
    ) -> "PostingStore":
        """Rebuild a store written by :meth:`save`.

        Args:
            directory: the save directory.
            strict: when True (default) the first corrupt list raises its
                underlying error wrapped in :class:`ShardLoadError`; when
                False corrupt lists are skipped, recorded in
                ``store.load_errors`` and the owning shard's
                ``failed_terms``, and loading continues.
        """
        directory = os.fspath(directory)
        with open(os.path.join(directory, _MANIFEST)) as fh:
            manifest = json.load(fh)
        if manifest.get("version") != _MANIFEST_VERSION:
            raise ReproError(
                f"unsupported store manifest version {manifest.get('version')!r}"
            )
        store = cls()
        for name, spec in manifest["shards"].items():
            shard = store.create_shard(
                name, codec=spec["codec"], universe=spec["universe"]
            )
            for term, rel in spec["terms"].items():
                path = os.path.join(directory, rel)
                try:
                    shard.postings[term] = load(path)
                except Exception as exc:
                    err = ShardLoadError(name, term, path, exc)
                    if strict:
                        raise err from exc
                    store.load_errors.append(err)
                    shard.failed_terms[term] = str(exc)
        return store
