"""Exceptions raised by the posting store and query engine."""

from __future__ import annotations

from repro.core.errors import ReproError


class StoreError(ReproError):
    """Base class for serving-layer errors."""


class UnknownShardError(StoreError, KeyError):
    """A query or admin call referenced a shard the store does not hold."""


class DuplicateShardError(StoreError, ValueError):
    """A shard name was added twice."""


class DuplicateTermError(StoreError, ValueError):
    """A term was added twice to the same shard."""


class ShardLoadError(StoreError):
    """A persisted shard failed to load (corrupt file, bad manifest).

    Carries the shard/term/path that failed so lenient loads can report
    exactly what was skipped.
    """

    def __init__(self, shard: str, term: str, path: str, cause: Exception) -> None:
        super().__init__(f"shard {shard!r} term {term!r} ({path}): {cause}")
        self.shard = shard
        self.term = term
        self.path = path
        self.cause = cause
