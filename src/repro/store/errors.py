"""Exceptions raised by the posting store and query engine."""

from __future__ import annotations

from repro.core.errors import ReproError


class StoreError(ReproError):
    """Base class for serving-layer errors."""


class UnknownShardError(StoreError, KeyError):
    """A query or admin call referenced a shard the store does not hold."""


class DuplicateShardError(StoreError, ValueError):
    """A shard name was added twice."""


class DuplicateTermError(StoreError, ValueError):
    """A term was added twice to the same shard."""


class ManifestParamsError(StoreError):
    """A saved shard's codec configuration disagrees with the registry.

    The manifest records each codec's full :meth:`params` at save time;
    loading verifies those against how the running registry instantiates
    the same codec name, so a store saved under one configuration (say,
    a different block size) is never silently decoded under another.
    """

    def __init__(self, codec: str, saved: dict, actual: dict) -> None:
        super().__init__(
            f"codec {codec!r} was saved with params {saved!r} but the "
            f"registry instantiates it with {actual!r}"
        )
        self.codec = codec
        self.saved = saved
        self.actual = actual


class MappedSegmentError(StoreError):
    """A memory-mapped (v3) segment file failed validation.

    Raised at open for structural damage (bad magic/version, truncation,
    header or table CRC mismatch, out-of-bounds offsets) and at first
    access for payload damage (per-term CRC mismatch, blob/entry
    metadata disagreement).  Carries the file path and, when the damage
    is localisable, the term it affects (``None`` for whole-file
    damage).
    """

    def __init__(self, path: str, detail: str, term: str | None = None) -> None:
        where = f" term {term!r}" if term is not None else ""
        super().__init__(f"mapped segment {path}{where}: {detail}")
        self.path = path
        self.term = term
        self.detail = detail


class ShardLoadError(StoreError):
    """A persisted shard failed to load (corrupt file, bad manifest).

    Carries the shard/term/path that failed so lenient loads can report
    exactly what was skipped.
    """

    def __init__(self, shard: str, term: str, path: str, cause: Exception) -> None:
        super().__init__(f"shard {shard!r} term {term!r} ({path}): {cause}")
        self.shard = shard
        self.term = term
        self.path = path
        self.cause = cause
