"""Concurrency and serving-contract rules, REPRO100 through REPRO108.

The codec rules (REPRO001–006) keep the *measured* artefacts honest;
this family keeps the *serving* path honest under load.  Each rule
mechanises one invariant the store/server stack already relies on but
which, before this module, only code review enforced:

* REPRO100 — no blocking calls inside ``async def`` bodies: the asyncio
  accept loop serves every connection; one ``time.sleep`` stalls all.
* REPRO101 — locks are acquired with ``with``, never bare
  ``.acquire()``/``.release()`` pairs that leak on exception.
* REPRO102 — the project-wide lock-ordering graph (nested ``with``
  regions plus call edges) must be acyclic; a cycle is a deadlock
  waiting for the right thread interleaving.
* REPRO103 — WAL durability ordering: a function that appends to the
  write-ahead log must sync it before returning (the ack barrier).
* REPRO104 — cache keys carry a version: inserts into the plan-result
  cache must derive from ``read_version()`` and be guarded against
  degraded results; raw tuple keys for ``decode()`` must carry a
  per-term version component.
* REPRO105 — counter families (offered/accepted/shed, …) are mutated
  together on every path, so their arithmetic identities hold.
* REPRO106 — ``except Exception`` in store/server code must re-raise or
  wrap into the ``errors.py`` hierarchy (or carry a reasoned noqa).
* REPRO107 — mutable state of lock-owning classes is only mutated while
  holding one of the class's locks.
* REPRO108 — the cluster packages raise only from the unified
  ``repro.api.errors`` tree: the router's retry/hedging machinery
  dispatches on the tree's ``retryable`` bit, so an off-tree exception
  silently disables failover for that path.

Static analysis here is deliberately *over-approximate* where it must
guess (calls resolve by bare name to every same-named function in the
project), so the lock model may contain edges that cannot happen at
runtime but never misses one that can.  The one blind spot — calls made
through stored function values, which have no name to resolve — is
covered dynamically by :mod:`repro.analysis.runtime_witness`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules import _call_origin, _finding, _path_matches, _rule
from repro.analysis.walker import (
    ClassDef,
    FunctionInfo,
    ProjectModel,
    tail_name,
)

# ----------------------------------------------------------------------
# Shared traversal helpers
# ----------------------------------------------------------------------


def _own_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Every node of a function body, excluding nested def/class scopes.

    Nested functions are separate :class:`FunctionInfo` records and are
    analysed on their own, so visiting them here would double-report.
    """

    def rec(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            yield child
            yield from rec(child)

    yield from rec(fn_node)


def _receiver_segments(expr: ast.expr) -> list[str]:
    """Name segments of an access chain: ``self._wal.append`` →
    ``["self", "_wal"]`` for the receiver of ``append``."""
    parts: list[str] = []
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return parts


def _is_self_attr(expr: ast.expr, attr: str | None = None) -> str | None:
    """The attribute name when *expr* is exactly ``self.<attr>``."""
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        if attr is None or expr.attr == attr:
            return expr.attr
    return None


def _lock_id(
    expr: ast.expr, owner: ClassDef | None, model: ProjectModel
) -> str | None:
    """Resolve an expression to a ``Class.attr`` lock identity.

    ``self._lock`` resolves through the enclosing class; ``x.state_lock``
    resolves when exactly one class in the project declares that
    attribute as a lock.  Ambiguous multi-owner attributes on foreign
    receivers are skipped rather than guessed — a wrong identity would
    fabricate ordering edges.
    """
    if not isinstance(expr, ast.Attribute):
        return None
    attr = expr.attr
    if _is_self_attr(expr) and owner is not None and attr in owner.lock_attrs:
        return f"{owner.name}.{attr}"
    owners = model.lock_owners(attr)
    if len(owners) == 1:
        return f"{owners[0].name}.{attr}"
    return None


def _lock_events(
    fn: FunctionInfo, model: ProjectModel
) -> Iterator[tuple[str, object, tuple[str, ...]]]:
    """Flatten a function into lock-region events.

    Yields, in source order:

    * ``("acquire", (lock_id, node), held_before)`` for each ``with``
      item resolving to a known lock;
    * ``("node", expr_node, held)`` for every expression node;
    * ``("stmt", stmt, held)`` for every simple statement.

    ``held`` is the tuple of lock ids whose ``with`` regions enclose the
    event.  Nested def/class scopes are skipped (they are separate
    functions with their own events).
    """
    owner = fn.owner

    def walk(
        body: list[ast.stmt], held: tuple[str, ...]
    ) -> Iterator[tuple[str, object, tuple[str, ...]]]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = held
                for item in stmt.items:
                    for node in ast.walk(item.context_expr):
                        yield ("node", node, inner)
                    lid = _lock_id(item.context_expr, owner, model)
                    if lid is not None:
                        yield ("acquire", (lid, item.context_expr), inner)
                        inner = inner + (lid,)
                yield from walk(stmt.body, inner)
                continue
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, (ast.stmt, ast.excepthandler)):
                    continue
                for node in ast.walk(child):
                    yield ("node", node, held)
            yield ("stmt", stmt, held)
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, attr, None)
                if nested and all(isinstance(s, ast.stmt) for s in nested):
                    yield from walk(nested, held)
            for handler in getattr(stmt, "handlers", []):
                yield from walk(handler.body, held)

    yield from walk(fn.node.body, ())


def _container_call_receiver_attr(fn: FunctionInfo, call: ast.Call) -> str | None:
    """``X`` when *call* is ``self.X.<method>()`` on an owner container."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    attr = _is_self_attr(func.value)
    if (
        attr is not None
        and fn.owner is not None
        and attr in fn.owner.mutable_attrs
    ):
        return attr
    return None


# ----------------------------------------------------------------------
# REPRO100 — no blocking calls in async bodies
# ----------------------------------------------------------------------
_BLOCKING_ORIGINS = frozenset(
    {
        "time.sleep",
        "os.system",
        "os.popen",
        "os.fsync",
        "socket.socket",
        "socket.create_connection",
        "socket.getaddrinfo",
        "urllib.request.urlopen",
        "open",
        "input",
    }
)
_BLOCKING_PREFIXES = ("subprocess.", "requests.")


@_rule(
    "REPRO100",
    "no blocking calls inside async def bodies",
    "The asyncio event loop serves every connection on one thread; a "
    "single time.sleep / sync socket / subprocess call inside a handler "
    "stalls the whole server, not one request.",
    doc="""\
Flags, inside every `async def` in the server packages
(`server-packages`, default `repro/server`):

* calls whose resolved origin is blocking — `time.sleep`, builtin
  `open`, `socket.socket` / `create_connection` / `getaddrinfo`,
  `os.system` / `os.popen` / `os.fsync`, `urllib.request.urlopen`,
  anything under `subprocess.` or `requests.`;
* `.acquire()` on anything without a `timeout=` argument — a bare lock
  acquire can park the event loop indefinitely.

Blocking work belongs behind `loop.run_in_executor(...)` (how the
query engine is invoked from `repro/server/app.py`) or an async
equivalent (`asyncio.sleep`, `asyncio.open_connection`).  Nested
synchronous helper functions are exempt — only code the event loop
runs directly is checked.""",
)
def check_async_blocking(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for fn in model.iter_functions():
        if not fn.is_async or not _path_matches(fn.module, config.server_packages):
            continue
        for node in _own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            origin = _call_origin(fn.module, node.func)
            if origin is not None and (
                origin in _BLOCKING_ORIGINS
                or origin.startswith(_BLOCKING_PREFIXES)
            ):
                yield _finding(
                    fn.module,
                    node,
                    "REPRO100",
                    f"blocking call {origin}() inside async function "
                    f"{fn.qualname!r}; it stalls the event loop — use an "
                    "async equivalent or run_in_executor",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and not any(kw.arg == "timeout" for kw in node.keywords)
            ):
                yield _finding(
                    fn.module,
                    node,
                    "REPRO100",
                    f".acquire() without timeout inside async function "
                    f"{fn.qualname!r}; a contended lock parks the event "
                    "loop indefinitely",
                )


# ----------------------------------------------------------------------
# REPRO101 — locks are held via with, never bare acquire/release
# ----------------------------------------------------------------------
@_rule(
    "REPRO101",
    "lock attributes are acquired via with, not bare acquire/release",
    "A bare .acquire()/.release() pair leaks the lock when the code "
    "between them raises; `with` releases on every exit path.  Every "
    "lock the store/server stack owns is context-managed.",
    doc="""\
Any `.acquire()` or `.release()` call whose receiver resolves to a
known lock attribute (an instance attribute assigned
`threading.Lock()` / `RLock()` / `Condition()` anywhere in the
project) is flagged, in the concurrency packages
(`concurrency-packages`, default `repro/store` + `repro/server`).

Rationale: `with self._lock:` releases on return, exception, and
`break` alike; a manual pair silently deadlocks the next acquirer the
first time the critical section raises.  Code that genuinely needs a
conditional acquire (e.g. `acquire(timeout=...)` probes) should carry
a reasoned `# repro: noqa[REPRO101]`.""",
)
def check_bare_acquire(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for fn in model.iter_functions():
        if not _path_matches(fn.module, config.concurrency_packages):
            continue
        for node in _own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("acquire", "release"):
                continue
            lid = _lock_id(func.value, fn.owner, model)
            if lid is not None:
                yield _finding(
                    fn.module,
                    node,
                    "REPRO101",
                    f"bare .{func.attr}() on lock {lid} in {fn.qualname!r}; "
                    "use a `with` block so the lock is released on every "
                    "exit path",
                )


# ----------------------------------------------------------------------
# REPRO102 — the lock-ordering graph is acyclic
# ----------------------------------------------------------------------
def _lock_model(
    model: ProjectModel, config: AnalysisConfig
) -> tuple[
    dict[tuple[str, str], tuple[FunctionInfo, ast.AST, str]],
    dict[int, set[str]],
]:
    """(ordering edges, transitive lock set per function id).

    Edges map ``(held, acquired)`` to a representative site.  Call
    resolution is by bare name across the whole project — sound but
    over-approximate — except calls on the owner's own mutable-container
    attributes (``self._data.get(...)``), which are container operations,
    not project calls.  Interprocedural self-edges are dropped for the
    same reason (a same-named wrapper otherwise reports every lock as
    conflicting with itself); *direct* self-nesting is kept.
    """
    fns = [
        fn
        for fn in model.iter_functions()
        if _path_matches(fn.module, config.concurrency_packages)
    ]
    direct: dict[int, set[str]] = {}
    acquires: dict[int, list[tuple[str, ast.AST, tuple[str, ...]]]] = {}
    calls: dict[int, list[tuple[str, ast.AST, tuple[str, ...]]]] = {}
    for fn in fns:
        key = id(fn)
        direct[key] = set()
        acquires[key] = []
        calls[key] = []
        for kind, payload, held in _lock_events(fn, model):
            if kind == "acquire":
                lid, node = payload  # type: ignore[misc]
                direct[key].add(lid)
                acquires[key].append((lid, node, held))
            elif kind == "node" and isinstance(payload, ast.Call):
                if not held:
                    continue
                if _container_call_receiver_attr(fn, payload) is not None:
                    continue
                name = tail_name(payload.func)
                if name is not None:
                    calls[key].append((name, payload, held))

    by_id = {id(fn): fn for fn in fns}
    trans: dict[int, set[str]] = {k: set(v) for k, v in direct.items()}
    changed = True
    while changed:
        changed = False
        for key in trans:
            for name, _node, _held in calls[key]:
                for callee in model.functions_named(name):
                    callee_locks = trans.get(id(callee))
                    if callee_locks and not callee_locks <= trans[key]:
                        trans[key] |= callee_locks
                        changed = True

    edges: dict[tuple[str, str], tuple[FunctionInfo, ast.AST, str]] = {}
    for key, fn in by_id.items():
        for lid, node, held in acquires[key]:
            for h in held:
                if h == lid and fn.owner is not None:
                    factory = fn.owner.lock_attrs.get(lid.split(".")[-1])
                    if factory == "RLock":
                        continue  # reentrant by design
                edges.setdefault(
                    (h, lid), (fn, node, f"acquired while holding {h}")
                )
        for name, node, held in calls[key]:
            reachable: set[str] = set()
            for callee in model.functions_named(name):
                reachable |= trans.get(id(callee), set())
            for m in reachable:
                for h in held:
                    if m == h:
                        continue  # over-approximate call resolution
                    edges.setdefault(
                        (h, m),
                        (fn, node, f"call to {name}() may acquire {m}"),
                    )
    return edges, trans


def _find_cycles(edges: dict[tuple[str, str], object]) -> list[list[str]]:
    """Elementary cycles in the edge set, canonicalised and de-duplicated."""
    adj: dict[str, list[str]] = {}
    for src, dst in edges:
        adj.setdefault(src, []).append(dst)
        adj.setdefault(dst, [])
    cycles: list[list[str]] = []
    seen: set[tuple[str, ...]] = set()
    state: dict[str, int] = {}  # 0 unvisited / 1 on stack / 2 done
    stack: list[str] = []

    def dfs(node: str) -> None:
        state[node] = 1
        stack.append(node)
        for nxt in sorted(adj[node]):
            if state.get(nxt, 0) == 0:
                dfs(nxt)
            elif state.get(nxt) == 1:
                cycle = stack[stack.index(nxt) :]
                pivot = cycle.index(min(cycle))
                canon = tuple(cycle[pivot:] + cycle[:pivot])
                if canon not in seen:
                    seen.add(canon)
                    cycles.append(list(canon))
        stack.pop()
        state[node] = 2

    for node in sorted(adj):
        if state.get(node, 0) == 0:
            dfs(node)
    return cycles


@_rule(
    "REPRO102",
    "the project lock-ordering graph is acyclic",
    "Two threads taking the same pair of locks in opposite orders "
    "deadlock under the right interleaving; an acyclic global ordering "
    "makes that impossible by construction.",
    doc="""\
The analyzer builds a project-wide lock-ordering graph: an edge
`A -> B` means some code path acquires lock `B` (a `with` on a known
lock attribute) while already holding `A` — either directly via nested
`with` blocks, or interprocedurally, because a call made under `A`
reaches a function whose transitive lock set contains `B`.  Calls
resolve by bare name to every same-named function in the project
(over-approximate, therefore sound); a cycle in the resulting graph is
reported with one representative acquisition site.

The store's intended order is documented in `repro/store/segments.py`:
`_compact_lock -> _write_lock -> state_lock / DeltaSegment._lock`, with
the metrics/cache locks as leaves.  The runtime witness
(`repro.analysis.runtime_witness`, enabled by `REPRO_DEBUG=1`) checks
the *observed* acquisition order against this same model, covering
call-through-stored-function edges static analysis cannot see.""",
)
def check_lock_order(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    edges, _trans = _lock_model(model, config)
    for cycle in _find_cycles(edges):
        ring = cycle + [cycle[0]]
        first = edges[(ring[0], ring[1])]
        fn, node, via = first
        yield _finding(
            fn.module,
            node,
            "REPRO102",
            "lock-ordering cycle " + " -> ".join(ring) + f" ({via} in "
            f"{fn.qualname}); threads taking these locks in opposite "
            "orders can deadlock",
        )


# ----------------------------------------------------------------------
# REPRO103 — WAL append is followed by sync before return
# ----------------------------------------------------------------------
def _is_walish(expr: ast.expr) -> bool:
    return any("wal" in seg.lower() for seg in _receiver_segments(expr))


@_rule(
    "REPRO103",
    "WAL appends are synced before the function returns",
    "The write path's durability promise is fsync-before-ack: a batch "
    "is acknowledged only after its WAL records are on disk.  An append "
    "without a dominating sync() acks data a crash can lose.",
    doc="""\
Any function in the concurrency packages that calls `.append(...)` on
a WAL-ish receiver (an access chain with a `wal` segment, e.g.
`self._wal.append`) must also call `.sync()` or `.close()` on a
WAL-ish receiver — or `os.fsync` — at or after the last append.

This approximates "a sync dominates every return on the ack path" by
line position, which matches the repository idiom (append in a loop,
one sync at the end — see `WritablePostingStore.ingest_batch`).  A
function that intentionally defers durability (e.g. group commit held
open across calls) should carry a reasoned `# repro: noqa[REPRO103]`
on the append line.""",
)
def check_wal_durability(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for fn in model.iter_functions():
        if not _path_matches(fn.module, config.concurrency_packages):
            continue
        appends: list[ast.Call] = []
        syncs: list[ast.Call] = []
        for node in _own_nodes(fn.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and _is_walish(func.value):
                if func.attr == "append":
                    appends.append(node)
                elif func.attr in ("sync", "close"):
                    syncs.append(node)
            elif _call_origin(fn.module, func) == "os.fsync":
                syncs.append(node)
        if not appends:
            continue
        last_append = max(appends, key=lambda n: n.lineno)
        if not any(s.lineno >= last_append.lineno for s in syncs):
            yield _finding(
                fn.module,
                last_append,
                "REPRO103",
                f"{fn.qualname!r} appends to the WAL but never syncs it "
                "before returning; acknowledged data would be lost by a "
                "crash — call .sync() on the ack path",
            )


# ----------------------------------------------------------------------
# REPRO104 — cache keys are versioned; degraded results stay out
# ----------------------------------------------------------------------
_DEGRADED_GUARD_WORDS = (
    "degraded", "partial", "status", "ok", "failed", "timed_out", "error",
)
_VERSION_WORDS = ("version", "generation", "revision", "gen")


def _plan_cache_put_findings(fn: FunctionInfo) -> Iterator[tuple[ast.Call, str]]:
    """(node, problem) for unguarded/unversioned plan-cache puts."""
    has_version = any(
        isinstance(node, (ast.Attribute, ast.Name))
        and (tail_name(node) or "") == "read_version"
        for node in _own_nodes(fn.node)
    )

    def walk(body: list[ast.stmt], guards: tuple[str, ...]) -> Iterator:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            new_guards = guards
            if isinstance(stmt, ast.If):
                try:
                    new_guards = guards + (ast.unparse(stmt.test).lower(),)
                except Exception:  # pragma: no cover - unparse is total on ast
                    new_guards = guards
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, (ast.stmt, ast.excepthandler)):
                    continue
                for node in ast.walk(child):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "put"
                        and "plan_cache" in "".join(
                            _receiver_segments(node.func.value)
                        )
                    ):
                        if not has_version:
                            yield node, (
                                "inserts into the plan-result cache without "
                                "deriving the key from read_version(); stale "
                                "results survive ingest/compaction"
                            )
                        if not any(
                            any(w in g for w in _DEGRADED_GUARD_WORDS)
                            for g in (
                                new_guards
                                if isinstance(stmt, ast.If)
                                else guards
                            )
                        ):
                            yield node, (
                                "plan-cache put is not guarded against "
                                "degraded results (no enclosing if on "
                                "degraded/status); partial answers would be "
                                "served as complete until the next version "
                                "bump"
                            )
            for attr in ("body", "orelse", "finalbody"):
                nested = getattr(stmt, attr, None)
                if nested and all(isinstance(s, ast.stmt) for s in nested):
                    yield from walk(nested, new_guards)
            for handler in getattr(stmt, "handlers", []):
                yield from walk(handler.body, new_guards)

    yield from walk(fn.node.body, ())


@_rule(
    "REPRO104",
    "cache inserts carry a version and exclude degraded results",
    "The plan cache is only coherent because the store version lives "
    "inside every key; an unversioned key (or a cached partial result) "
    "serves stale/incomplete answers with a confident status.",
    doc="""\
Three checks over the concurrency packages:

1. A function calling `<...>plan_cache<...>.put(...)` must also call
   `read_version()` — the version belongs inside the key, so ingest
   and compaction invalidate by key motion rather than by callbacks.
2. That same put must sit under an `if` whose condition mentions the
   result status (`degraded` / `partial` / `status` / `ok` / `failed`
   / `timed_out`): degraded results must never be cached, or a
   timeout's partial answer is replayed as authoritative.
3. A `decode(..., key=(a, b, c))` call whose key is a plain tuple of
   names — no call, no version-ish component — is flagged: per-term
   decode keys must include the term's rewrite generation (use
   `plan.versioned()` / the shard `versions` map), or a compacted
   term's old array is served from cache under the same codec name.""",
)
def check_cache_versioning(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for fn in model.iter_functions():
        if not _path_matches(fn.module, config.concurrency_packages):
            continue
        for node, problem in _plan_cache_put_findings(fn):
            yield _finding(fn.module, node, "REPRO104", f"{fn.qualname!r} {problem}")
        for node in _own_nodes(fn.node):
            if not (
                isinstance(node, ast.Call) and tail_name(node.func) == "decode"
            ):
                continue
            for kw in node.keywords:
                if kw.arg != "key" or not isinstance(kw.value, ast.Tuple):
                    continue
                versioned = any(
                    isinstance(elt, ast.Call)
                    or any(
                        w in (tail_name(elt) or "").lower()
                        for w in _VERSION_WORDS
                    )
                    for elt in kw.value.elts
                )
                if not versioned:
                    yield _finding(
                        fn.module,
                        kw.value,
                        "REPRO104",
                        f"{fn.qualname!r} builds a decode cache key from a "
                        "raw tuple with no version component; a term "
                        "rewritten by compaction under the same codec would "
                        "be served stale from cache",
                    )


# ----------------------------------------------------------------------
# REPRO105 — counter families move together
# ----------------------------------------------------------------------
@_rule(
    "REPRO105",
    "counter families are mutated together",
    "offered = accepted + shed (and friends) are the identities the "
    "metrics tests and capacity dashboards rely on; a path that bumps "
    "one member without its anchor silently breaks the arithmetic.",
    doc="""\
For each configured family (`counter-families`; the first member is
the *anchor* — the total the others partition), every class that
initialises all members as integer attributes is checked: any method
that augments a non-anchor member must also augment the anchor, and
any method that augments the anchor must augment at least one other
member (to record *which* branch the event took).  Branch-local
correctness (`if accepted: ... else: ...`) is accepted at method
granularity — the rule catches the common regression of adding a new
early-return path that bumps `_offered` and nothing else.""",
)
def check_counter_families(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for cls in model.iter_classes():
        if not _path_matches(cls.module, config.concurrency_packages):
            continue
        for family in config.counter_families:
            if not set(family) <= set(cls.int_attrs):
                continue
            anchor = family[0]
            for fn in model.iter_functions():
                if fn.owner is not cls or fn.name == "__init__":
                    continue
                mutated = set()
                site: ast.AST = fn.node
                for node in _own_nodes(fn.node):
                    if isinstance(node, ast.AugAssign):
                        attr = _is_self_attr(node.target)
                        if attr in family:
                            mutated.add(attr)
                            site = node
                if not mutated:
                    continue
                if anchor not in mutated:
                    yield _finding(
                        fn.module,
                        site,
                        "REPRO105",
                        f"{fn.qualname!r} mutates {sorted(mutated)} without "
                        f"the family anchor {anchor!r}; the "
                        f"{'+'.join(family[1:])} <= {anchor} identity breaks",
                    )
                elif mutated == {anchor} and len(family) > 1:
                    yield _finding(
                        fn.module,
                        site,
                        "REPRO105",
                        f"{fn.qualname!r} mutates the anchor {anchor!r} "
                        "without recording any other family member "
                        f"({', '.join(family[1:])}); the event's outcome is "
                        "lost",
                    )


# ----------------------------------------------------------------------
# REPRO106 — except Exception must re-raise or wrap
# ----------------------------------------------------------------------
@_rule(
    "REPRO106",
    "broad except handlers re-raise or wrap into the error hierarchy",
    "A swallowed `except Exception` in the store/server turns data-"
    "corrupting bugs into silently wrong answers; handlers must re-"
    "raise, wrap into repro.store.errors, or justify themselves.",
    doc="""\
`except Exception:`, `except BaseException:`, and bare `except:` in
the concurrency packages must contain a `raise` somewhere in the
handler body (re-raise, or wrap into the `repro.store.errors`
hierarchy so callers can route on error class).  Intentional
containment points — the server's answer-500-and-keep-serving
handlers, the engine's degrade-to-partial-results path — carry a
reasoned `# repro: noqa[REPRO106] -- <why>` on the `except` line; the
reason is part of the contract (`--strict-noqa` keeps them honest by
reporting suppressions that stop matching).""",
)
def check_exception_taxonomy(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for mod in model.modules:
        if not _path_matches(mod, config.concurrency_packages):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                broad = "bare except"
            elif tail_name(node.type) in ("Exception", "BaseException"):
                broad = f"except {tail_name(node.type)}"
            else:
                continue
            if any(isinstance(n, ast.Raise) for n in ast.walk(node)):
                continue
            yield _finding(
                mod,
                node,
                "REPRO106",
                f"{broad} swallows the error; re-raise, wrap into the "
                "repro.store.errors hierarchy, or add a reasoned "
                "`# repro: noqa[REPRO106] -- why`",
            )


# ----------------------------------------------------------------------
# REPRO107 — shared mutable state is mutated under a class lock
# ----------------------------------------------------------------------
_CONTAINER_MUTATORS = frozenset(
    {
        "append", "extend", "insert", "remove", "pop", "popitem", "clear",
        "update", "setdefault", "add", "discard", "move_to_end",
    }
)


def _holds_class_lock(held: tuple[str, ...], cls: ClassDef) -> bool:
    return any(h.split(".", 1)[0] == cls.name for h in held)


def _unguarded_mutations(
    fn: FunctionInfo, cls: ClassDef, model: ProjectModel
) -> Iterator[tuple[ast.AST, str]]:
    tracked = set(cls.int_attrs) | cls.mutable_attrs
    for kind, payload, held in _lock_events(fn, model):
        if _holds_class_lock(held, cls):
            continue
        if kind == "stmt":
            stmt = payload
            if isinstance(stmt, ast.AugAssign):
                attr = _is_self_attr(stmt.target)
                if attr in tracked:
                    yield stmt, f"augments self.{attr}"
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = _is_self_attr(target.value)
                        if attr in cls.mutable_attrs:
                            yield stmt, f"stores into self.{attr}[...]"
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, ast.Subscript):
                        attr = _is_self_attr(target.value)
                        if attr in cls.mutable_attrs:
                            yield stmt, f"deletes from self.{attr}[...]"
        elif kind == "node" and isinstance(payload, ast.Call):
            func = payload.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CONTAINER_MUTATORS
            ):
                attr = _is_self_attr(func.value)
                if attr in cls.mutable_attrs:
                    yield payload, f"calls self.{attr}.{func.attr}()"


def _called_only_under_lock(
    method: FunctionInfo, cls: ClassDef, model: ProjectModel
) -> bool:
    """True when every intra-class call of *method* holds a class lock.

    The `DeltaSegment._entry` pattern: a private helper with no lock of
    its own because every caller already holds the segment lock.  A
    method with no intra-class call sites at all is *not* exempt.
    """
    sites = 0
    for fn in model.iter_functions():
        if fn.owner is not cls or fn is method:
            continue
        for kind, payload, held in _lock_events(fn, model):
            if (
                kind == "node"
                and isinstance(payload, ast.Call)
                and isinstance(payload.func, ast.Attribute)
                and _is_self_attr(payload.func, method.name) is not None
            ):
                sites += 1
                if not _holds_class_lock(held, cls):
                    return False
    return sites > 0


@_rule(
    "REPRO107",
    "shared mutable state is mutated under a class lock",
    "A class that owns a lock owns it for a reason: its counters and "
    "containers are reached from worker threads.  A mutation outside "
    "every `with <lock>` region is a data race the tests only catch "
    "under unlucky scheduling.",
    doc="""\
For every class in the concurrency packages that declares at least one
lock attribute, mutations of its `__init__`-declared mutable state —
integer counters (augmented assignment) and mutable containers
(`.append()`/`.update()`/subscript stores/`del`) — must occur inside a
`with` region holding one of the class's own locks.

Two escapes: `__init__` itself (no concurrent access before
construction completes), and private helpers whose every intra-class
call site already holds a class lock (the `DeltaSegment._entry`
pattern — the lock is the caller's obligation, documented there).
State that is genuinely immutable-after-init should either be built
entirely inside `__init__` or carry a reasoned
`# repro: noqa[REPRO107]` where the single-threaded mutation happens
(e.g. recovery code that runs before the store is published).""",
)
def check_guarded_state(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for cls in model.iter_classes():
        if not cls.lock_attrs:
            continue
        if not _path_matches(cls.module, config.concurrency_packages):
            continue
        for fn in model.iter_functions():
            if fn.owner is not cls or fn.name == "__init__":
                continue
            hits = list(_unguarded_mutations(fn, cls, model))
            if not hits:
                continue
            if _called_only_under_lock(fn, cls, model):
                continue
            for node, what in hits:
                yield _finding(
                    fn.module,
                    node,
                    "REPRO107",
                    f"{fn.qualname!r} {what} without holding any "
                    f"{cls.name} lock ({', '.join(sorted(cls.lock_attrs))}); "
                    "thread-shared state must be mutated under the lock or "
                    "documented immutable-after-init",
                )


# ----------------------------------------------------------------------
# REPRO108 — cluster code raises only the unified error tree
# ----------------------------------------------------------------------
_ERROR_TREE = "repro.api.errors"


def _raised_origin(mod: ModuleInfo, node: ast.Raise) -> str | None:
    """Dotted origin of the class a ``raise`` statement instantiates.

    ``raise X(...)`` and ``raise X`` resolve ``X`` through the module's
    imports; ``raise err`` of a local binding resolves to the bare name
    (which never lives under the error tree, so it is flagged — the
    compliant respelling is a bare ``raise``, which keeps the original
    class and is exempt).
    """
    exc = node.exc
    if isinstance(exc, ast.Call):
        exc = exc.func
    if exc is None:
        return None
    return _call_origin(mod, exc)


@_rule(
    "REPRO108",
    "cluster code raises only from the unified error tree",
    "The router's retry, hedging, and failover paths dispatch on the "
    "`retryable` bit of the repro.api.errors tree; an exception raised "
    "from outside it silently disables failover for that code path and "
    "surfaces to callers as an unclassifiable crash.",
    doc="""\
Every ``raise`` in the cluster packages (``cluster-packages`` in
``[tool.repro-analysis]``, default ``repro/cluster``) must instantiate
a class imported from ``repro.api.errors`` — the unified hierarchy
whose ``retryable`` attribute the scatter-gather machinery routes on.

Exempt: the bare re-raise ``raise`` (keeps the original class, which a
surrounding handler already classified).  ``raise err`` of a caught
binding is *not* exempt — respell it as a bare ``raise``, or wrap into
the tree so the class is visible statically.

Intentional escapes — exceptions that never leave the module because a
wrapper converts them (transport internals), or that a framework
contract requires (``argparse.ArgumentTypeError``) — carry a reasoned
``# repro: noqa[REPRO108] -- <why>`` on the ``raise`` line;
``--strict-noqa`` reports any that stop matching.""",
)
def check_cluster_error_tree(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for mod in model.modules:
        if not _path_matches(mod, config.cluster_packages):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            origin = _raised_origin(mod, node)
            if origin is not None and (
                origin == _ERROR_TREE or origin.startswith(_ERROR_TREE + ".")
            ):
                continue
            shown = origin if origin is not None else ast.dump(node.exc)
            yield _finding(
                mod,
                node,
                "REPRO108",
                f"raises {shown!r}, which is outside the {_ERROR_TREE} "
                "tree the cluster retry machinery dispatches on; raise a "
                "tree class, use a bare `raise` to re-raise, or add a "
                "reasoned `# repro: noqa[REPRO108] -- why`",
            )
