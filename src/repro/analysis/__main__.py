"""Entry point for ``python -m repro.analysis``."""

import os
import sys

from repro.analysis.cli import main

try:
    status = main()
    sys.stdout.flush()
except BrokenPipeError:
    # Downstream pager/head closed the pipe — the POSIX convention is a
    # quiet SIGPIPE-style exit, not a traceback.  Point stdout at
    # /dev/null so the interpreter's shutdown flush cannot re-raise.
    os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    status = 1
raise SystemExit(status)
