"""Pytest integration for the codec-contract analyzer.

Two entry points:

* :func:`assert_clean` — call from any test to fail with a readable
  listing when the tree has findings.
* the ``repro_analysis_clean`` fixture — enable with
  ``pytest_plugins = ["repro.analysis.pytest_plugin"]`` in a conftest.

The repository's own gate lives in ``tests/analysis/test_self_clean.py``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Sequence

from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import run_checks
from repro.analysis.findings import format_text


def assert_clean(
    paths: Sequence[Path | str] | None = None,
    config: AnalysisConfig | None = None,
) -> None:
    """Raise AssertionError listing every finding when *paths* is dirty."""
    findings = run_checks(paths, config)
    if findings:
        raise AssertionError(
            f"{len(findings)} codec-contract finding(s):\n"
            + format_text(findings)
        )


try:  # pragma: no cover - trivially exercised by the fixture test
    import pytest

    @pytest.fixture
    def repro_analysis_clean() -> Callable[..., None]:
        """Fixture handing tests the :func:`assert_clean` gate."""
        return assert_clean

except ImportError:  # pytest not installed; library use only
    pass
