"""Structured findings emitted by the codec-contract analyzer.

A :class:`Finding` pins one rule violation to a file/line/column.  The
object is deliberately plain — the CLI renders it as text or JSON, the
pytest integration formats it into an assertion message, and downstream
tooling (CI annotations) can consume the dict form.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Iterable


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a concrete source location.

    Attributes:
        path: file the violation lives in, as given to the analyzer
            (normalised to POSIX separators).
        line: 1-based line number.
        col: 0-based column offset of the offending node.
        rule: rule identifier, e.g. ``"REPRO003"``.
        message: human-readable description of what is wrong and why.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict[str, object]:
        return asdict(self)

    def format(self) -> str:
        """``path:line:col: RULE message`` — the text output format."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def findings_to_json(findings: Iterable[Finding]) -> str:
    """Serialise findings for ``--format=json`` and CI consumption."""
    items = [f.to_dict() for f in findings]
    return json.dumps({"count": len(items), "findings": items}, indent=2)


def format_text(findings: Iterable[Finding]) -> str:
    return "\n".join(f.format() for f in findings)


def _gh_escape(text: str) -> str:
    """Escape a workflow-command message (GitHub's own %-encoding)."""
    return text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def format_github(findings: Iterable[Finding]) -> str:
    """GitHub Actions ``::error`` annotations (``--format=github``).

    One workflow command per finding; the Actions runner attaches each
    to its file/line in the PR diff view.  Columns are converted to the
    1-based convention the annotation API expects.
    """
    return "\n".join(
        f"::error file={f.path},line={f.line},col={f.col + 1},"
        f"title={f.rule}::{_gh_escape(f'{f.rule} {f.message}')}"
        for f in findings
    )
