"""The codec-contract rules, REPRO001 through REPRO008.

Each rule protects one invariant the paper's comparative methodology
depends on (see ``docs/static_analysis.md`` for the full rationale):

* REPRO001 — registration & literal metadata: every concrete codec is
  enrolled in every experiment via ``@register_codec``, with ``name`` /
  ``family`` / ``year`` statically readable.
* REPRO002 — input immutability: codec methods never mutate their
  argument arrays or payloads.
* REPRO003 — honest wire sizes: ``CompressedIntegerSet`` is constructed
  with a computed ``size_bytes``, never a literal or ``sys.getsizeof``.
* REPRO004 — timing discipline: no ad-hoc timing or printing inside the
  measured library; ``repro.bench.harness`` owns the clock.
* REPRO005 — named word sizes: 31/32/64/128/65536-style constants in
  codec loop bodies must be named module-level constants.
* REPRO006 — registry completeness: registered codec names and the
  paper-legend declaration in ``repro.core.registry`` stay in sync.
* REPRO008 — capability honesty: a codec's declared ``CAPABILITIES``
  set and its overridden operation methods imply each other, so the
  query planner's feature detection never dispatches into a base-class
  ``NotImplementedError`` and never misses a real compressed kernel.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.walker import (
    ClassDef,
    ModuleInfo,
    ProjectModel,
    dotted_name,
    int_literal,
    root_name,
    str_literal,
    tail_name,
)

RuleCheck = Callable[[ProjectModel, AnalysisConfig], Iterator[Finding]]


@dataclass(frozen=True)
class Rule:
    code: str
    title: str
    rationale: str
    check: RuleCheck
    #: Long-form documentation for ``--explain`` (falls back to the
    #: rationale when a rule hasn't written one).
    doc: str = ""

    @property
    def explain_text(self) -> str:
        body = self.doc.strip() or self.rationale
        return f"{self.code} — {self.title}\n\n{body}\n"


RULES: dict[str, Rule] = {}


def _rule(
    code: str, title: str, rationale: str, doc: str = ""
) -> Callable[[RuleCheck], RuleCheck]:
    def decorate(fn: RuleCheck) -> RuleCheck:
        RULES[code] = Rule(
            code=code, title=title, rationale=rationale, check=fn, doc=doc
        )
        return fn

    return decorate


@_rule(
    "REPRO099",
    "unused suppression comment",
    "A `# repro: noqa` that no longer matches a finding is a contract "
    "hole waiting to hide the next genuine violation; strict-noqa mode "
    "reports it so suppressions stay exactly as narrow as the code needs.",
    doc="""\
Reported only under ``--strict-noqa`` (or ``strict-noqa = true`` in
``[tool.repro-analysis]``).  The engine tracks which suppression
comments actually absorbed a finding during the run; any leftover
``# repro: noqa[REPROxxx]`` whose rule was enabled but produced nothing
on that line is reported here, as is a blanket ``# repro: noqa`` that
suppressed nothing during a full (unselected) run.

Suppressions scoped to rules that were *not* enabled in the current run
are never reported — a ``--select`` subset cannot know whether the
other rules still need them.

Fix by deleting the stale comment, or narrowing a blanket noqa to the
rule codes the line genuinely violates.
""",
)
def check_unused_suppressions(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    """Placeholder: REPRO099 is emitted by the engine's suppression pass,
    which is the only place that knows which noqa comments were used."""
    return iter(())


def _finding(mod: ModuleInfo, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=mod.relpath,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=code,
        message=message,
    )


def _path_matches(mod: ModuleInfo, fragments: tuple[str, ...]) -> bool:
    # Match against the absolute path too: when the analyzer runs from
    # outside the repo (installed package, bare CLI), the display path
    # is relative to the package root and drops the ``repro/`` prefix
    # the configured fragments rely on.
    paths = (mod.relpath, mod.path.as_posix())
    return any(frag in p for frag in fragments for p in paths)


# ----------------------------------------------------------------------
# REPRO001 — registration & literal metadata
# ----------------------------------------------------------------------
_FAMILIES = ("bitmap", "invlist")


def _is_registered(cls: ClassDef) -> bool:
    return "register_codec" in cls.decorators


@_rule(
    "REPRO001",
    "codec registration and literal metadata",
    "Experiments iterate the registry; an unregistered codec silently "
    "drops out of every figure, and non-literal name/family/year break "
    "legend ordering and the Figure-1 history table.",
)
def check_registration(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for cls in model.iter_classes():
        registered = _is_registered(cls)
        if registered:
            if str_literal(cls.attrs.get("name")) is None:
                yield _finding(
                    cls.module,
                    cls.node,
                    "REPRO001",
                    f"registered codec {cls.name!r} must define `name` as a "
                    "literal string class attribute in its own body",
                )
            family = str_literal(model.resolve_class_attr(cls, "family"))
            if family not in _FAMILIES:
                yield _finding(
                    cls.module,
                    cls.node,
                    "REPRO001",
                    f"registered codec {cls.name!r} must declare `family` as "
                    "a literal 'bitmap' or 'invlist' (own body or base class)",
                )
            if int_literal(model.resolve_class_attr(cls, "year")) is None:
                yield _finding(
                    cls.module,
                    cls.node,
                    "REPRO001",
                    f"registered codec {cls.name!r} must declare `year` as a "
                    "literal int (Figure-1 history metadata)",
                )
        elif model.is_codec_class(cls) and "name" in cls.attrs:
            codec_name = str_literal(cls.attrs.get("name"))
            if codec_name is not None:
                yield _finding(
                    cls.module,
                    cls.node,
                    "REPRO001",
                    f"codec class {cls.name!r} defines name {codec_name!r} "
                    "but is not decorated with @register_codec; it will be "
                    "invisible to every experiment",
                )


# ----------------------------------------------------------------------
# REPRO002 — codec methods must not mutate their inputs
# ----------------------------------------------------------------------
#: Method calls that mutate their receiver in place (ndarray and the
#: builtin containers a payload might hold).
_MUTATORS = frozenset(
    {
        "sort", "fill", "resize", "put", "partition", "setflags", "byteswap",
        "append", "extend", "insert", "remove", "pop", "clear", "update",
        "setdefault", "reverse", "itemset",
    }
)


def _bare_names(target: ast.expr) -> Iterator[str]:
    """Names rebound by an assignment target (recursing into tuples)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from _bare_names(elt)
    elif isinstance(target, ast.Starred):
        yield from _bare_names(target.value)


def _expression_parts(stmt: ast.stmt) -> Iterator[ast.AST]:
    """The statement's own expressions, excluding nested statement bodies
    (those are visited separately, in order, by the block walker)."""
    for child in ast.iter_child_nodes(stmt):
        if not isinstance(child, (ast.stmt, ast.excepthandler)):
            yield from ast.walk(child)


def _mutating_calls(
    stmt: ast.stmt, tracked: set[str]
) -> Iterator[tuple[ast.AST, str, str]]:
    """(node, param, description) for mutating calls inside *stmt*."""
    for node in _expression_parts(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr in _MUTATORS:
            owner = root_name(func.value)
            if owner in tracked:
                yield node, owner, f".{func.attr}() mutates"
        elif func.attr == "at" and node.args:
            # ufunc scatter: np.bitwise_or.at(arr, idx, vals)
            owner = root_name(node.args[0])
            if owner in tracked:
                yield node, owner, "ufunc .at() scatters into"


def _scan_method(
    mod: ModuleInfo, cls_name: str, fn: ast.FunctionDef
) -> Iterator[Finding]:
    args = fn.args
    params = {
        a.arg
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        if a.arg not in ("self", "cls")
    }
    if args.vararg:
        params.add(args.vararg.arg)
    if args.kwarg:
        params.add(args.kwarg.arg)
    if not params:
        return
    tracked = set(params)

    def emit(node: ast.AST, param: str, what: str) -> Finding:
        return _finding(
            mod,
            node,
            "REPRO002",
            f"{cls_name}.{fn.name} {what} its input parameter {param!r}; "
            "codec methods must leave their arguments untouched",
        )

    def visit_block(body: list[ast.stmt]) -> Iterator[Finding]:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested scopes have their own parameters
            for node, param, what in _mutating_calls(stmt, tracked):
                yield emit(node, param, what)
            if isinstance(stmt, ast.AugAssign):
                owner = root_name(stmt.target)
                if owner in tracked:
                    yield emit(
                        stmt,
                        owner,
                        "applies an in-place augmented assignment to",
                    )
                if isinstance(stmt.target, ast.Name):
                    tracked.discard(stmt.target.id)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else ([stmt.target] if stmt.target is not None else [])
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        owner = root_name(target)
                        if owner in tracked:
                            yield emit(stmt, owner, "assigns into")
                    for rebound in _bare_names(target):
                        tracked.discard(rebound)
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        owner = root_name(target)
                        if owner in tracked:
                            yield emit(stmt, owner, "deletes items of")
                    for rebound in _bare_names(target):
                        tracked.discard(rebound)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                for rebound in _bare_names(stmt.target):
                    tracked.discard(rebound)
            # Recurse into compound-statement bodies in source order.
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner and all(isinstance(s, ast.stmt) for s in inner):
                    yield from visit_block(inner)
            for handler in getattr(stmt, "handlers", []):
                yield from visit_block(handler.body)

    yield from visit_block(fn.body)


@_rule(
    "REPRO002",
    "codec methods must not mutate their inputs",
    "compress/intersect/union receive caller-owned arrays and shared "
    "payloads; in-place mutation corrupts the posting lists every other "
    "codec is benchmarked against in the same run.",
)
def check_no_input_mutation(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for cls in model.iter_classes():
        if not (model.is_codec_class(cls) or _is_registered(cls)):
            continue
        for stmt in cls.node.body:
            if isinstance(stmt, ast.FunctionDef):
                yield from _scan_method(cls.module, cls.name, stmt)


# ----------------------------------------------------------------------
# REPRO003 — size_bytes must be explicitly computed
# ----------------------------------------------------------------------
@_rule(
    "REPRO003",
    "size_bytes must be explicitly computed",
    "size_bytes is the paper's space-overhead metric; a hardcoded "
    "literal or interpreter-dependent sys.getsizeof silently falsifies "
    "every compression-ratio figure.",
)
def check_size_bytes(model: ProjectModel, config: AnalysisConfig) -> Iterator[Finding]:
    for mod in model.modules:
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            if tail_name(node.func) != "CompressedIntegerSet":
                continue
            size_arg: ast.expr | None = None
            for kw in node.keywords:
                if kw.arg == "size_bytes":
                    size_arg = kw.value
            if size_arg is None and len(node.args) >= 5:
                size_arg = node.args[4]
            if size_arg is None:
                continue
            if int_literal(size_arg) is not None:
                yield _finding(
                    mod,
                    size_arg,
                    "REPRO003",
                    "CompressedIntegerSet built with literal size_bytes "
                    f"{int_literal(size_arg)}; compute the wire size from "
                    "the payload instead",
                )
            elif isinstance(size_arg, ast.Call):
                called = dotted_name(size_arg.func) or ""
                if called.split(".")[-1] == "getsizeof":
                    yield _finding(
                        mod,
                        size_arg,
                        "REPRO003",
                        "CompressedIntegerSet built with sys.getsizeof(); "
                        "that measures interpreter overhead, not the wire "
                        "format — compute size from the payload",
                    )


# ----------------------------------------------------------------------
# REPRO004 — timing/printing stays in the harness
# ----------------------------------------------------------------------
_BANNED_TIMING = frozenset(
    {
        "time.time", "time.time_ns", "time.perf_counter",
        "time.perf_counter_ns", "time.monotonic", "time.monotonic_ns",
        "time.process_time", "time.process_time_ns",
    }
)


def _call_origin(mod: ModuleInfo, func: ast.expr) -> str | None:
    """Resolve a called name through the module's imports."""
    dotted = dotted_name(func)
    if dotted is None:
        return None
    head, _, rest = dotted.partition(".")
    origin = mod.imports.get(head, head)
    return f"{origin}.{rest}" if rest else origin


@_rule(
    "REPRO004",
    "no ad-hoc timing or printing in library code",
    "Measurements must flow through repro.bench.harness so every codec "
    "is timed identically (same clock, same repetition policy); stray "
    "print/time calls skew the hot paths being measured.",
)
def check_timing_discipline(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for mod in model.modules:
        if _path_matches(mod, config.timing_exempt):
            continue
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = _call_origin(mod, node.func)
            if origin is None:
                continue
            if origin == "print":
                yield _finding(
                    mod,
                    node,
                    "REPRO004",
                    "print() inside library code; report through the "
                    "bench harness or logging instead",
                )
            elif origin in _BANNED_TIMING or origin.startswith("timeit."):
                yield _finding(
                    mod,
                    node,
                    "REPRO004",
                    f"{origin}() inside library code; all timing must go "
                    "through repro.bench.harness",
                )


# ----------------------------------------------------------------------
# REPRO005 — word/block sizes are named constants
# ----------------------------------------------------------------------
class _MagicNumberVisitor(ast.NodeVisitor):
    def __init__(self, mod: ModuleInfo, magic: frozenset[int]) -> None:
        self.mod = mod
        self.magic = magic
        self.fn_depth = 0
        self.loop_depth = 0
        self.findings: list[Finding] = []

    def _in_scope(self) -> bool:
        return self.fn_depth > 0 and self.loop_depth > 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.fn_depth += 1
        self.generic_visit(node)
        self.fn_depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _visit_loop(self, node: ast.AST) -> None:
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1

    visit_For = visit_AsyncFor = visit_While = _visit_loop  # type: ignore[assignment]
    visit_ListComp = visit_SetComp = visit_DictComp = _visit_loop  # type: ignore[assignment]
    visit_GeneratorExp = _visit_loop  # type: ignore[assignment]

    def _is_decimal_spelling(self, node: ast.Constant) -> bool:
        """Hex/octal/binary literals (0x80, 0b…) are bit masks, not word
        sizes — only decimal spellings are flagged."""
        lines = self.mod.source_lines
        if not (1 <= node.lineno <= len(lines)):
            return True
        text = lines[node.lineno - 1][node.col_offset : node.col_offset + 2]
        return text[:2].lower() not in ("0x", "0o", "0b")

    def visit_Constant(self, node: ast.Constant) -> None:
        value = node.value
        if (
            self._in_scope()
            and isinstance(value, int)
            and not isinstance(value, bool)
            and value in self.magic
            and self._is_decimal_spelling(node)
        ):
            self.findings.append(
                _finding(
                    self.mod,
                    node,
                    "REPRO005",
                    f"magic word/block-size literal {value} in a codec loop "
                    "body; hoist it to a named module-level constant",
                )
            )


@_rule(
    "REPRO005",
    "word/block sizes are named module-level constants",
    "31/32/64/128/65536 encode each format's word and chunk geometry; "
    "an inline copy in a loop body can drift from the constant the rest "
    "of the codec uses, producing subtly corrupt payloads.",
)
def check_magic_numbers(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for mod in model.modules:
        if not _path_matches(mod, config.magic_packages):
            continue
        visitor = _MagicNumberVisitor(mod, config.magic_numbers)
        visitor.visit(mod.tree)
        yield from visitor.findings


# ----------------------------------------------------------------------
# REPRO006 — registry matches the paper legend
# ----------------------------------------------------------------------
_LEGEND_LISTS = {"_BITMAP_ORDER": "bitmap", "_INVLIST_ORDER": "invlist"}


def _legend_declarations(
    model: ProjectModel,
) -> tuple[ModuleInfo, dict[str, tuple[list[str], int]]] | None:
    """The module declaring both legend lists, with values and linenos."""
    for mod in model.modules:
        found: dict[str, tuple[list[str], int]] = {}
        for node in mod.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in _LEGEND_LISTS
                    and isinstance(node.value, (ast.List, ast.Tuple))
                ):
                    names = [
                        s
                        for s in (str_literal(e) for e in node.value.elts)
                        if s is not None
                    ]
                    found[target.id] = (names, node.lineno)
        if len(found) == len(_LEGEND_LISTS):
            return mod, found
    return None


@_rule(
    "REPRO006",
    "registry completeness against the paper legend",
    "The legend lists in repro.core.registry are the single declaration "
    "of the paper's codec roster; a registered codec missing from them "
    "(or a stale legend entry) desynchronises every figure's ordering.",
)
def check_registry_completeness(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    legend = _legend_declarations(model)
    if legend is None:
        return  # partial run without the registry module in scope
    legend_mod, lists = legend
    registered: dict[str, list[ClassDef]] = {}
    for cls in model.iter_classes():
        if not _is_registered(cls):
            continue
        codec_name = str_literal(cls.attrs.get("name"))
        if codec_name is not None:
            registered.setdefault(codec_name, []).append(cls)
    if not registered:
        return  # registry-only run: nothing to cross-check
    legend_by_family = {
        family: lists[var][0] for var, family in _LEGEND_LISTS.items()
    }
    all_legend = {n for names in legend_by_family.values() for n in names}
    for codec_name, classes in registered.items():
        for cls in classes:
            family = str_literal(model.resolve_class_attr(cls, "family"))
            expected = legend_by_family.get(family or "", [])
            if codec_name not in expected:
                where = (
                    f"the {family} legend list"
                    if family in legend_by_family
                    else "either legend list"
                )
                if codec_name in all_legend:
                    msg = (
                        f"registered codec {codec_name!r} appears in the "
                        f"wrong legend list for its family {family!r}"
                    )
                else:
                    msg = (
                        f"registered codec {codec_name!r} is missing from "
                        f"{where} in {legend_mod.relpath}; figures will "
                        "order it arbitrarily"
                    )
                yield _finding(cls.module, cls.node, "REPRO006", msg)
    for var, family in _LEGEND_LISTS.items():
        names, lineno = lists[var]
        for legend_name in names:
            if legend_name not in registered:
                yield Finding(
                    path=legend_mod.relpath,
                    line=lineno,
                    col=0,
                    rule="REPRO006",
                    message=(
                        f"legend entry {legend_name!r} in {var} has no "
                        "registered codec; stale roster declaration"
                    ),
                )


# ----------------------------------------------------------------------
# REPRO008 — declared capabilities match overridden operations
# ----------------------------------------------------------------------
#: Capability member → the methods a codec must override to honour it.
_CAPABILITY_METHODS: dict[str, tuple[str, ...]] = {
    "INTERSECT_COMPRESSED": ("intersect_compressed",),
    "UNION_COMPRESSED": ("union_compressed",),
    "INTERSECT_WITH_ARRAY": ("intersect_with_array",),
    "RANK_SELECT_SKIP": ("rank", "select"),
}

#: The root of the codec hierarchy; its generic fallbacks (decompress-
#: based intersect_with_array/rank/select, NotImplementedError kernels)
#: do not count as capability-backing overrides.
_CODEC_ROOT = "IntegerSetCodec"


def _parse_capability_literal(value: ast.expr) -> set[str] | None:
    """Member names of a ``frozenset({Capability.X, ...})`` literal.

    Returns ``None`` when the expression is anything else — a computed
    set, a name reference, an unknown member — because the planner's
    feature detection (and this rule) can only trust a static literal.
    """
    if not (isinstance(value, ast.Call) and tail_name(value.func) == "frozenset"):
        return None
    if not value.args:
        return set() if not value.keywords else None
    if len(value.args) > 1 or value.keywords:
        return None
    arg = value.args[0]
    if not isinstance(arg, ast.Set):
        return None
    members: set[str] = set()
    for elt in arg.elts:
        member = tail_name(elt)
        if member is None or member not in _CAPABILITY_METHODS:
            return None
        members.add(member)
    return members


def _defined_methods(
    model: ProjectModel, cls: ClassDef, _seen: frozenset[str] = frozenset()
) -> set[str]:
    """Method names defined anywhere below the codec root."""
    if cls.name == _CODEC_ROOT or cls.name in _seen:
        return set()
    defined = {
        stmt.name
        for stmt in cls.node.body
        if isinstance(stmt, ast.FunctionDef)
    }
    for base in cls.bases:
        if base == _CODEC_ROOT:
            continue
        base_cls = model.lookup_class(base)
        if base_cls is not None:
            defined |= _defined_methods(model, base_cls, _seen | {cls.name})
    return defined


@_rule(
    "REPRO008",
    "declared capabilities match overridden operations",
    "compile_shard_plan dispatches on CAPABILITIES without try/except; "
    "a declared capability with no backing override raises mid-query, "
    "and an override without the declaration silently forfeits the "
    "compressed-domain path the codec implements.",
    doc="""\
The compressed-execution protocol is declaration-driven: the planner
asks ``codec.capabilities()`` and, on a match, calls the corresponding
method directly.  Both failure directions are therefore contract bugs:

* **declared but not implemented** — the plan evaluator calls straight
  into ``IntegerSetCodec``'s ``NotImplementedError`` stub (or a generic
  decompress-everything fallback that falsifies the compressed-domain
  measurements);
* **implemented but not declared** — the codec's real kernel exists but
  feature detection never selects it, so every query silently pays the
  decode-then-merge price the kernel was written to avoid.

The rule resolves ``CAPABILITIES`` through base classes (the WAH family
declares once on ``RLEBitmapCodec``; blocked lists once on
``BlockedInvListCodec``) and counts a method as overridden if any class
below ``IntegerSetCodec`` in the static base chain defines it.
``RANK_SELECT_SKIP`` requires both ``rank`` and ``select``.  Instance-
level narrowing (``capabilities()`` overrides such as blocked lists
dropping ``INTERSECT_WITH_ARRAY`` without skip pointers) is runtime
behaviour out of static scope — the class-level declaration is what
must stay honest.  Only registered codecs are checked.
""",
)
def check_capability_contract(
    model: ProjectModel, config: AnalysisConfig
) -> Iterator[Finding]:
    for cls in model.iter_classes():
        if not _is_registered(cls):
            continue
        value = model.resolve_class_attr(cls, "CAPABILITIES")
        declared = set() if value is None else _parse_capability_literal(value)
        if declared is None:
            yield _finding(
                cls.module,
                value if value is not None else cls.node,
                "REPRO008",
                f"codec {cls.name!r} must declare CAPABILITIES as a "
                "literal frozenset({Capability.X, ...}) so the planner's "
                "feature detection stays statically checkable",
            )
            continue
        defined = _defined_methods(model, cls)
        for cap, methods in sorted(_CAPABILITY_METHODS.items()):
            implemented = all(m in defined for m in methods)
            if cap in declared and not implemented:
                missing = ", ".join(m for m in methods if m not in defined)
                yield _finding(
                    cls.module,
                    cls.node,
                    "REPRO008",
                    f"codec {cls.name!r} declares Capability.{cap} but "
                    f"never overrides {missing}; the planner would "
                    "dispatch into the base-class fallback",
                )
            elif implemented and cap not in declared:
                have = ", ".join(methods)
                yield _finding(
                    cls.module,
                    cls.node,
                    "REPRO008",
                    f"codec {cls.name!r} overrides {have} but does not "
                    f"declare Capability.{cap}; the compressed-domain "
                    "kernel exists yet feature detection will never "
                    "select it",
                )


def run_rules(
    model: ProjectModel, config: AnalysisConfig
) -> Iterable[Finding]:
    for code in sorted(RULES):
        if config.rule_enabled(code):
            yield from RULES[code].check(model, config)


# Registers the REPRO100-series concurrency rules into RULES.  Imported
# last so the decorator infrastructure above exists when it runs.
from repro.analysis import concurrency as _concurrency  # noqa: E402,F401
