"""Orchestration: parse → rules → suppression → sorted findings."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import AnalysisConfig, find_pyproject, load_config
from repro.analysis.findings import Finding
from repro.analysis.rules import run_rules
from repro.analysis.walker import ALL_RULES, ProjectModel, build_model


def default_paths() -> list[Path]:
    """The installed ``repro`` package — what a bare CLI run analyses."""
    import repro

    return [Path(repro.__file__).parent]


def _apply_suppressions(
    model: ProjectModel, findings: Iterable[Finding]
) -> list[Finding]:
    by_path = {mod.relpath: mod for mod in model.modules}
    kept = []
    for finding in findings:
        mod = by_path.get(finding.path)
        if mod is not None:
            codes = mod.noqa.get(finding.line)
            if codes and (ALL_RULES in codes or finding.rule in codes):
                continue
        kept.append(finding)
    return kept


def run_checks(
    paths: Sequence[Path | str] | None = None,
    config: AnalysisConfig | None = None,
) -> list[Finding]:
    """Run every enabled codec-contract rule over *paths*.

    Args:
        paths: files or directories; defaults to the installed ``repro``
            package so ``run_checks()`` audits the library itself.
        config: rule selection and scoping; when omitted, loaded from
            the ``[tool.repro-analysis]`` table of the ``pyproject.toml``
            nearest the first path (the same resolution the CLI uses),
            falling back to :class:`AnalysisConfig` defaults.

    Returns:
        Sorted, suppression-filtered findings (empty when clean).
        Unparseable files surface as rule ``REPRO000`` findings rather
        than exceptions, so one corrupt file cannot hide the rest.
    """
    resolved = (
        [Path(p) for p in paths] if paths else default_paths()
    )
    cfg = config if config is not None else load_config(find_pyproject(resolved[0]))
    model = build_model(resolved)
    findings = list(model.parse_failures)
    findings.extend(run_rules(model, cfg))
    return sorted(_apply_suppressions(model, findings))
