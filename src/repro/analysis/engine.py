"""Orchestration: parse → rules → suppression → sorted findings."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.config import AnalysisConfig, find_pyproject, load_config
from repro.analysis.findings import Finding
from repro.analysis.rules import RULES, run_rules
from repro.analysis.walker import ALL_RULES, ProjectModel, build_model


def default_paths() -> list[Path]:
    """The installed ``repro`` package — what a bare CLI run analyses."""
    import repro

    return [Path(repro.__file__).parent]


def _apply_suppressions(
    model: ProjectModel,
    findings: Iterable[Finding],
    config: AnalysisConfig | None = None,
) -> list[Finding]:
    """Filter suppressed findings; under strict-noqa, report stale noqas.

    A suppression is credited to the specific code it names when
    possible, falling back to a blanket ``# repro: noqa`` on the same
    line.  The credit ledger is what makes ``strict_noqa`` sound: any
    comment that absorbed nothing — and whose rule was actually enabled
    in this run — resurfaces as a REPRO099 finding.
    """
    by_path = {mod.relpath: mod for mod in model.modules}
    used: set[tuple[str, int, str]] = set()
    kept = []
    for finding in findings:
        mod = by_path.get(finding.path)
        if mod is not None:
            codes = mod.noqa.get(finding.line)
            if codes:
                if finding.rule in codes:
                    used.add((finding.path, finding.line, finding.rule))
                    continue
                if ALL_RULES in codes:
                    used.add((finding.path, finding.line, ALL_RULES))
                    continue
        kept.append(finding)
    if config is not None and config.strict_noqa:
        kept.extend(_unused_suppressions(model, used, config))
    return kept


def _unused_suppressions(
    model: ProjectModel,
    used: set[tuple[str, int, str]],
    config: AnalysisConfig,
) -> Iterable[Finding]:
    """REPRO099 findings for suppression comments that absorbed nothing.

    Blanket noqas are only judged during a full run (empty ``select``):
    a rule subset cannot tell whether the blanket still earns its keep
    against the rules that did not run.  Code-scoped noqas are judged
    whenever their rule was enabled.
    """
    full_run = not config.select
    for mod in model.modules:
        for line, codes in sorted(mod.noqa.items()):
            for code in sorted(codes):
                if (mod.relpath, line, code) in used:
                    continue
                if code == ALL_RULES:
                    if full_run:
                        yield Finding(
                            path=mod.relpath,
                            line=line,
                            col=0,
                            rule="REPRO099",
                            message=(
                                "blanket `# repro: noqa` suppressed nothing; "
                                "delete it or scope it to a rule code"
                            ),
                        )
                    continue
                if not config.rule_enabled(code):
                    continue
                detail = (
                    f"suppression `# repro: noqa[{code}]` matched no "
                    f"{code} finding on this line; delete it"
                    if code in RULES
                    else f"suppression names unknown rule code {code}"
                )
                yield Finding(
                    path=mod.relpath,
                    line=line,
                    col=0,
                    rule="REPRO099",
                    message=detail,
                )


def run_checks(
    paths: Sequence[Path | str] | None = None,
    config: AnalysisConfig | None = None,
) -> list[Finding]:
    """Run every enabled codec-contract rule over *paths*.

    Args:
        paths: files or directories; defaults to the installed ``repro``
            package so ``run_checks()`` audits the library itself.
        config: rule selection and scoping; when omitted, loaded from
            the ``[tool.repro-analysis]`` table of the ``pyproject.toml``
            nearest the first path (the same resolution the CLI uses),
            falling back to :class:`AnalysisConfig` defaults.

    Returns:
        Sorted, suppression-filtered findings (empty when clean).
        Unparseable files surface as rule ``REPRO000`` findings rather
        than exceptions, so one corrupt file cannot hide the rest.
    """
    resolved = (
        [Path(p) for p in paths] if paths else default_paths()
    )
    cfg = config if config is not None else load_config(find_pyproject(resolved[0]))
    model = build_model(resolved)
    findings = list(model.parse_failures)
    findings.extend(run_rules(model, cfg))
    return sorted(_apply_suppressions(model, findings, cfg))
