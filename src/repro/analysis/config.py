"""Analyzer configuration.

Defaults encode the repository's layout (``repro.bench`` owns timing,
``repro.bitmaps``/``repro.invlists`` hold the word-size-sensitive
codecs).  Projects embedding the analyzer can override any of it via a
``[tool.repro-analysis]`` table in ``pyproject.toml``:

.. code-block:: toml

    [tool.repro-analysis]
    select = ["REPRO001", "REPRO003"]   # only these rules
    ignore = ["REPRO005"]               # or drop specific rules
    timing-exempt = ["repro/bench"]     # REPRO004-free path fragments
    magic-packages = ["repro/bitmaps"]  # REPRO005 scope
    magic-numbers = [31, 32, 64, 128]   # REPRO005 literal set
    server-packages = ["repro/server"]  # REPRO100 async scope
    concurrency-packages = ["repro/store", "repro/server"]
    cluster-packages = ["repro/cluster"]  # REPRO108 error-tree scope
    counter-families = [["_offered", "_accepted", "_shed"]]
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field, replace
from pathlib import Path

#: Word/block-size literals that must be named module-level constants
#: when they appear in codec loop bodies (REPRO005).  31/32 are the
#: WAH-family group/word sizes, 63/64 the EWAH/Bitset word sizes, 128
#: the paper's inverted-list block size, 65536 the Roaring chunk width.
DEFAULT_MAGIC_NUMBERS = frozenset({31, 32, 63, 64, 128, 65536})

#: Counter families whose members must be mutated together (REPRO105).
#: The first member of each tuple is the *anchor* — the total every
#: other member partitions (offered = accepted + shed, flights ⊇
#: coalesced, ingest batches ⊇ ops/failures).
DEFAULT_COUNTER_FAMILIES: tuple[tuple[str, ...], ...] = (
    ("_offered", "_accepted", "_shed"),
    ("_flights", "_coalesced"),
    ("_ingest_batches", "_ingest_ops", "_ingest_failures"),
)


@dataclass(frozen=True)
class AnalysisConfig:
    """Which rules run, and where each contract applies.

    Attributes:
        select: if non-empty, only these rule codes run.
        ignore: rule codes switched off entirely.
        timing_exempt: path fragments (POSIX) where REPRO004 does not
            apply — the benchmark harness owns timing/printing, and the
            analyzer's own CLI prints its report.
        magic_packages: path fragments where REPRO005 looks for inline
            word-size literals (the codec packages).
        magic_numbers: the literal values REPRO005 hunts for.
        server_packages: path fragments holding asyncio code, where
            REPRO100 bans blocking calls inside ``async def`` bodies.
        concurrency_packages: path fragments holding thread-shared
            state, where the REPRO101–107 concurrency contracts apply.
        cluster_packages: path fragments whose modules may raise only
            from the unified ``repro.api.errors`` tree (REPRO108) —
            the retry/hedging machinery dispatches on its
            ``retryable`` bit, so an off-tree exception silently
            disables failover.
        counter_families: attribute-name tuples (anchor first) that
            REPRO105 requires to be mutated together.
        strict_noqa: when True, suppression comments that matched no
            finding are themselves reported (rule REPRO099).
    """

    select: frozenset[str] = frozenset()
    ignore: frozenset[str] = frozenset()
    timing_exempt: tuple[str, ...] = ("repro/bench", "repro/analysis")
    magic_packages: tuple[str, ...] = ("repro/bitmaps", "repro/invlists")
    magic_numbers: frozenset[int] = field(default=DEFAULT_MAGIC_NUMBERS)
    server_packages: tuple[str, ...] = ("repro/server",)
    concurrency_packages: tuple[str, ...] = ("repro/store", "repro/server")
    cluster_packages: tuple[str, ...] = ("repro/cluster",)
    counter_families: tuple[tuple[str, ...], ...] = DEFAULT_COUNTER_FAMILIES
    strict_noqa: bool = False

    def rule_enabled(self, code: str) -> bool:
        if code in self.ignore:
            return False
        if self.select:
            return code in self.select
        return True


def load_config(pyproject: Path | None = None) -> AnalysisConfig:
    """Build a config, layering ``[tool.repro-analysis]`` if present.

    Args:
        pyproject: explicit path to a ``pyproject.toml``; when None the
            defaults are returned unchanged.
    """
    cfg = AnalysisConfig()
    if pyproject is None or not pyproject.is_file():
        return cfg
    with open(pyproject, "rb") as fh:
        data = tomllib.load(fh)
    table = data.get("tool", {}).get("repro-analysis", {})
    if not isinstance(table, dict):
        return cfg
    updates: dict[str, object] = {}
    if "select" in table:
        updates["select"] = frozenset(str(c) for c in table["select"])
    if "ignore" in table:
        updates["ignore"] = frozenset(str(c) for c in table["ignore"])
    if "timing-exempt" in table:
        updates["timing_exempt"] = tuple(str(p) for p in table["timing-exempt"])
    if "magic-packages" in table:
        updates["magic_packages"] = tuple(str(p) for p in table["magic-packages"])
    if "magic-numbers" in table:
        updates["magic_numbers"] = frozenset(int(v) for v in table["magic-numbers"])
    if "server-packages" in table:
        updates["server_packages"] = tuple(str(p) for p in table["server-packages"])
    if "concurrency-packages" in table:
        updates["concurrency_packages"] = tuple(
            str(p) for p in table["concurrency-packages"]
        )
    if "cluster-packages" in table:
        updates["cluster_packages"] = tuple(str(p) for p in table["cluster-packages"])
    if "counter-families" in table:
        updates["counter_families"] = tuple(
            tuple(str(a) for a in family) for family in table["counter-families"]
        )
    if "strict-noqa" in table:
        updates["strict_noqa"] = bool(table["strict-noqa"])
    return replace(cfg, **updates)  # type: ignore[arg-type]


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above *start* (for the CLI)."""
    node = start.resolve()
    if node.is_file():
        node = node.parent
    for candidate in (node, *node.parents):
        p = candidate / "pyproject.toml"
        if p.is_file():
            return p
    return None
