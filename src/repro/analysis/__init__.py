"""Static codec-contract analyzer (see ``docs/static_analysis.md``).

The paper's comparison is only meaningful while all codecs obey one
strict contract — sorted int64 posting arrays in, byte-accurate
``size_bytes`` out, no input mutation, uncompressed arrays from
``intersect``/``union``.  This package enforces the statically checkable
parts of that contract as rules REPRO001–REPRO006 over the library's
own source, without importing it.

Library use::

    from repro.analysis import run_checks
    findings = run_checks(["src/repro"])
    assert not findings, "\\n".join(f.format() for f in findings)

CLI use::

    python -m repro.analysis [--format=json|text] [paths ...]

Per-line suppression::

    codec_cls = weird()  # repro: noqa[REPRO001]
"""

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.engine import run_checks
from repro.analysis.findings import Finding, findings_to_json, format_text
from repro.analysis.rules import RULES, Rule

__all__ = [
    "AnalysisConfig",
    "Finding",
    "Rule",
    "RULES",
    "run_checks",
    "load_config",
    "findings_to_json",
    "format_text",
]
