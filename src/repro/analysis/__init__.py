"""Static contract analyzer (see ``docs/static_analysis.md``).

Two rule families over the library's own source, analysed with ``ast``
and never imported:

* **REPRO001–006, the codec contracts** — the paper's comparison is
  only meaningful while all codecs obey one strict contract: sorted
  int64 posting arrays in, byte-accurate ``size_bytes`` out, no input
  mutation, uncompressed arrays from ``intersect``/``union``.
* **REPRO100–107, the concurrency and serving contracts** — no
  blocking calls in async bodies, locks held via ``with`` in an
  acyclic global order, fsync-before-ack on the WAL, versioned cache
  keys, counter families that move together, broad excepts that
  re-raise or justify themselves, and shared state mutated only under
  the owning class's lock.  The static lock model's blind spot (calls
  through stored function values) is covered dynamically by
  :mod:`repro.analysis.runtime_witness` under ``REPRO_DEBUG=1``.

Library use::

    from repro.analysis import run_checks
    findings = run_checks(["src/repro"])
    assert not findings, "\\n".join(f.format() for f in findings)

CLI use::

    python -m repro.analysis [--format=json|text|github] [--strict-noqa] [paths ...]
    python -m repro.analysis --explain REPRO102

Per-line suppression (``--strict-noqa`` reports stale ones as REPRO099)::

    codec_cls = weird()  # repro: noqa[REPRO001]
    except Exception:    # repro: noqa[REPRO106] -- why containment is safe
"""

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.engine import run_checks
from repro.analysis.findings import Finding, findings_to_json, format_text
from repro.analysis.rules import RULES, Rule

__all__ = [
    "AnalysisConfig",
    "Finding",
    "Rule",
    "RULES",
    "run_checks",
    "load_config",
    "findings_to_json",
    "format_text",
]
