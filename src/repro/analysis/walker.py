"""Source discovery and the cross-module project model.

The analyzer never imports the code it checks: every module is parsed
with :mod:`ast` and summarised into light-weight records.  Rules then
work over the whole-project view — which is what lets REPRO001 resolve a
``family`` attribute inherited from a base class in another file, and
REPRO006 compare every registered codec name against the single legend
declaration in ``repro/core/registry.py``.

Suppression comments are collected here too (from tokenize's COMMENT
tokens, so a ``# repro: noqa`` inside a string literal never counts):

    payload = weird_thing()  # repro: noqa[REPRO002]
    other = thing()          # repro: noqa[REPRO001,REPRO005]
    anything = go()          # repro: noqa          (all rules)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding

#: Matches the per-line suppression comment.  Group 1, when present, is
#: the comma-separated rule list; a bare ``# repro: noqa`` blankets all.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s*\[\s*([A-Z0-9,\s]+?)\s*\])?", re.I)

#: Suppresses every rule on the line (a bare ``# repro: noqa``).
ALL_RULES = "*"


@dataclass
class ClassDef:
    """One class statement, summarised for the rules."""

    module: "ModuleInfo"
    node: ast.ClassDef
    name: str
    #: Base-class names (last attribute segment, e.g. ``RLEBitmapCodec``).
    bases: list[str]
    #: Decorator names (last attribute segment, e.g. ``register_codec``).
    decorators: list[str]
    #: Class-body assignments to simple names: name -> value expression.
    attrs: dict[str, ast.expr]

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """A parsed module plus everything the rules need from it."""

    path: Path
    relpath: str  # POSIX-style, as reported in findings
    tree: ast.Module
    #: source split into lines, for spelling-sensitive rules (REPRO005
    #: distinguishes decimal word sizes from hex bit masks).
    source_lines: list[str]
    #: line -> set of suppressed rule codes (may contain ALL_RULES).
    noqa: dict[int, set[str]]
    #: local alias -> dotted origin, e.g. ``perf_counter`` ->
    #: ``time.perf_counter`` or ``np`` -> ``numpy``.
    imports: dict[str, str] = field(default_factory=dict)
    classes: list[ClassDef] = field(default_factory=list)


@dataclass
class ProjectModel:
    """Whole-project view handed to every rule."""

    modules: list[ModuleInfo]
    parse_failures: list[Finding]

    def iter_classes(self) -> Iterator[ClassDef]:
        for mod in self.modules:
            yield from mod.classes

    def lookup_class(self, name: str) -> ClassDef | None:
        """First class with this bare name, anywhere in the project."""
        for mod in self.modules:
            for cls in mod.classes:
                if cls.name == name:
                    return cls
        return None

    def is_codec_class(self, cls: ClassDef, _seen: frozenset[str] = frozenset()) -> bool:
        """True when *cls* (transitively) derives from ``IntegerSetCodec``.

        Resolution is purely by name so that rule fixtures — and user
        code subclassing ``repro.core.IntegerSetCodec`` — are recognised
        without importing anything.
        """
        if cls.name in _seen:
            return False  # defensive: inheritance cycle in broken code
        seen = _seen | {cls.name}
        for base in cls.bases:
            if base == "IntegerSetCodec":
                return True
            parent = self.lookup_class(base)
            if parent is not None and self.is_codec_class(parent, seen):
                return True
        return False

    def resolve_class_attr(
        self, cls: ClassDef, attr: str, _seen: frozenset[str] = frozenset()
    ) -> ast.expr | None:
        """The expression assigned to *attr*, searching the base chain."""
        if cls.name in _seen:
            return None
        if attr in cls.attrs:
            return cls.attrs[attr]
        seen = _seen | {cls.name}
        for base in cls.bases:
            parent = self.lookup_class(base)
            if parent is not None:
                value = self.resolve_class_attr(parent, attr, seen)
                if value is not None:
                    return value
        return None


# ----------------------------------------------------------------------
# Small AST helpers shared with the rules
# ----------------------------------------------------------------------
def tail_name(node: ast.expr) -> str | None:
    """Last name segment of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def dotted_name(node: ast.expr) -> str | None:
    """Full dotted form of a Name/Attribute chain, or None if dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def root_name(node: ast.expr) -> str | None:
    """Base variable of an access chain: ``a.payload[0].x`` -> ``a``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def str_literal(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def int_literal(node: ast.expr | None) -> int | None:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for f in candidates:
            f = f.resolve()
            if f not in seen and f.suffix == ".py":
                seen.add(f)
                yield f


def _collect_noqa(source: str) -> dict[int, set[str]]:
    """Map line numbers to the rule codes suppressed on them."""
    noqa: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if not m:
                continue
            line = tok.start[0]
            if m.group(1):
                codes = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
            else:
                codes = {ALL_RULES}
            noqa.setdefault(line, set()).update(codes)
    except tokenize.TokenError:
        pass  # a parse failure is reported separately
    return noqa


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


def _collect_classes(mod: ModuleInfo) -> list[ClassDef]:
    classes = []
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs: dict[str, ast.expr] = {}
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        attrs.setdefault(target.id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    attrs.setdefault(stmt.target.id, stmt.value)
        bases = [b for b in (tail_name(base) for base in node.bases) if b]
        decorators = [
            d for d in (tail_name(dec) for dec in node.decorator_list) if d
        ]
        classes.append(
            ClassDef(
                module=mod,
                node=node,
                name=node.name,
                bases=bases,
                decorators=decorators,
                attrs=attrs,
            )
        )
    return classes


def _display_path(path: Path, roots: list[Path]) -> str:
    """Path as reported in findings: relative to cwd when possible."""
    for base in (Path.cwd(), *roots):
        try:
            return path.relative_to(base.resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def build_model(paths: Iterable[Path]) -> ProjectModel:
    """Parse every Python file under *paths* into a :class:`ProjectModel`."""
    roots = [p if p.is_dir() else p.parent for p in paths]
    modules: list[ModuleInfo] = []
    failures: list[Finding] = []
    for file in iter_python_files(paths):
        relpath = _display_path(file, roots)
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            failures.append(
                Finding(
                    path=relpath,
                    line=int(line),
                    col=0,
                    rule="REPRO000",
                    message=f"could not parse module: {exc}",
                )
            )
            continue
        mod = ModuleInfo(
            path=file,
            relpath=relpath,
            tree=tree,
            source_lines=source.splitlines(),
            noqa=_collect_noqa(source),
        )
        mod.imports = _collect_imports(tree)
        mod.classes = _collect_classes(mod)
        modules.append(mod)
    return ProjectModel(modules=modules, parse_failures=failures)
