"""Source discovery and the cross-module project model.

The analyzer never imports the code it checks: every module is parsed
with :mod:`ast` and summarised into light-weight records.  Rules then
work over the whole-project view — which is what lets REPRO001 resolve a
``family`` attribute inherited from a base class in another file, and
REPRO006 compare every registered codec name against the single legend
declaration in ``repro/core/registry.py``.

Suppression comments are collected here too (from tokenize's COMMENT
tokens, so a ``# repro: noqa`` inside a string literal never counts):

    payload = weird_thing()  # repro: noqa[REPRO002]
    other = thing()          # repro: noqa[REPRO001,REPRO005]
    anything = go()          # repro: noqa          (all rules)
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding

#: Matches the per-line suppression comment.  Group 1, when present, is
#: the comma-separated rule list; a bare ``repro: noqa`` (no bracket
#: list) blankets all rules on the line.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\s*\[\s*([A-Z0-9,\s]+?)\s*\])?", re.I)

#: Suppresses every rule on the line (the bare, code-less form).
ALL_RULES = "*"

#: Constructors whose result is a mutual-exclusion primitive.  The
#: concurrency rules treat an attribute assigned one of these (directly
#: or through ``maybe_witness("name", threading.Lock())``) as a lock.
LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition"})


@dataclass
class ClassDef:
    """One class statement, summarised for the rules."""

    module: "ModuleInfo"
    node: ast.ClassDef
    name: str
    #: Base-class names (last attribute segment, e.g. ``RLEBitmapCodec``).
    bases: list[str]
    #: Decorator names (last attribute segment, e.g. ``register_codec``).
    decorators: list[str]
    #: Class-body assignments to simple names: name -> value expression.
    attrs: dict[str, ast.expr]
    #: Instance attributes assigned a lock primitive anywhere in the
    #: class body (``self._lock = threading.Lock()``): attr -> factory
    #: name (``"Lock"`` / ``"RLock"`` / ``"Condition"``).
    lock_attrs: dict[str, str] = field(default_factory=dict)
    #: Instance attributes assigned an int literal in ``__init__``
    #: (counter seeds like ``self._offered = 0``) — REPRO105's scope.
    int_attrs: dict[str, int] = field(default_factory=dict)
    #: Instance attributes assigned a mutable container in ``__init__``
    #: (dict/list/set displays or ``dict()``/``OrderedDict()``… calls).
    mutable_attrs: set[str] = field(default_factory=set)

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class FunctionInfo:
    """One function or method, with enough context for the rules."""

    module: "ModuleInfo"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    name: str
    #: ``Class.method`` for methods, the bare name for module functions.
    qualname: str
    #: Owning :class:`ClassDef`, or None for module-level functions.
    owner: "ClassDef | None"
    is_async: bool

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ModuleInfo:
    """A parsed module plus everything the rules need from it."""

    path: Path
    relpath: str  # POSIX-style, as reported in findings
    tree: ast.Module
    #: source split into lines, for spelling-sensitive rules (REPRO005
    #: distinguishes decimal word sizes from hex bit masks).
    source_lines: list[str]
    #: line -> set of suppressed rule codes (may contain ALL_RULES).
    noqa: dict[int, set[str]]
    #: local alias -> dotted origin, e.g. ``perf_counter`` ->
    #: ``time.perf_counter`` or ``np`` -> ``numpy``.
    imports: dict[str, str] = field(default_factory=dict)
    classes: list[ClassDef] = field(default_factory=list)
    #: Every function/method in the module, in source order.
    functions: list[FunctionInfo] = field(default_factory=list)


@dataclass
class ProjectModel:
    """Whole-project view handed to every rule."""

    modules: list[ModuleInfo]
    parse_failures: list[Finding]
    #: Lazy indexes for the concurrency rules (built on first use).
    _fn_index: dict[str, list[FunctionInfo]] | None = None
    _lock_index: dict[str, list[ClassDef]] | None = None

    def iter_classes(self) -> Iterator[ClassDef]:
        for mod in self.modules:
            yield from mod.classes

    def iter_functions(self) -> Iterator[FunctionInfo]:
        for mod in self.modules:
            yield from mod.functions

    def functions_named(self, name: str) -> list[FunctionInfo]:
        """Every project function/method with this bare name.

        Interprocedural rules resolve calls by bare name — deliberately
        over-approximate (a call to ``x.snapshot()`` maps to every
        ``snapshot`` in scope), which keeps the lock-order model sound:
        it may report an edge that cannot happen, never miss one that can.
        """
        index = self._fn_index
        if index is None:
            index = {}
            for fn in self.iter_functions():
                index.setdefault(fn.name, []).append(fn)
            self._fn_index = index
        return index.get(name, [])

    def lock_owners(self, attr: str) -> list[ClassDef]:
        """Classes declaring *attr* as a lock attribute."""
        index = self._lock_index
        if index is None:
            index = {}
            for cls in self.iter_classes():
                for name in cls.lock_attrs:
                    index.setdefault(name, []).append(cls)
            self._lock_index = index
        return index.get(attr, [])

    def lookup_class(self, name: str) -> ClassDef | None:
        """First class with this bare name, anywhere in the project."""
        for mod in self.modules:
            for cls in mod.classes:
                if cls.name == name:
                    return cls
        return None

    def is_codec_class(self, cls: ClassDef, _seen: frozenset[str] = frozenset()) -> bool:
        """True when *cls* (transitively) derives from ``IntegerSetCodec``.

        Resolution is purely by name so that rule fixtures — and user
        code subclassing ``repro.core.IntegerSetCodec`` — are recognised
        without importing anything.
        """
        if cls.name in _seen:
            return False  # defensive: inheritance cycle in broken code
        seen = _seen | {cls.name}
        for base in cls.bases:
            if base == "IntegerSetCodec":
                return True
            parent = self.lookup_class(base)
            if parent is not None and self.is_codec_class(parent, seen):
                return True
        return False

    def resolve_class_attr(
        self, cls: ClassDef, attr: str, _seen: frozenset[str] = frozenset()
    ) -> ast.expr | None:
        """The expression assigned to *attr*, searching the base chain."""
        if cls.name in _seen:
            return None
        if attr in cls.attrs:
            return cls.attrs[attr]
        seen = _seen | {cls.name}
        for base in cls.bases:
            parent = self.lookup_class(base)
            if parent is not None:
                value = self.resolve_class_attr(parent, attr, seen)
                if value is not None:
                    return value
        return None


# ----------------------------------------------------------------------
# Small AST helpers shared with the rules
# ----------------------------------------------------------------------
def tail_name(node: ast.expr) -> str | None:
    """Last name segment of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def dotted_name(node: ast.expr) -> str | None:
    """Full dotted form of a Name/Attribute chain, or None if dynamic."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def root_name(node: ast.expr) -> str | None:
    """Base variable of an access chain: ``a.payload[0].x`` -> ``a``."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def str_literal(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def int_literal(node: ast.expr | None) -> int | None:
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
    ):
        return node.value
    return None


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for f in candidates:
            f = f.resolve()
            if f not in seen and f.suffix == ".py":
                seen.add(f)
                yield f


def _collect_noqa(source: str) -> dict[int, set[str]]:
    """Map line numbers to the rule codes suppressed on them."""
    noqa: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if not m:
                continue
            line = tok.start[0]
            if m.group(1):
                codes = {c.strip().upper() for c in m.group(1).split(",") if c.strip()}
            else:
                codes = {ALL_RULES}
            noqa.setdefault(line, set()).update(codes)
    except tokenize.TokenError:
        pass  # a parse failure is reported separately
    return noqa


def _collect_imports(tree: ast.Module) -> dict[str, str]:
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                imports[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return imports


#: Mutable-container constructors for :attr:`ClassDef.mutable_attrs`.
_MUTABLE_FACTORIES = frozenset(
    {"dict", "list", "set", "OrderedDict", "defaultdict", "deque", "Counter"}
)


def _lock_factory_of(value: ast.expr) -> str | None:
    """The lock-constructor name behind *value*, or None.

    Recognises ``threading.Lock()`` directly and the runtime-witness
    wrapper form ``maybe_witness("name", threading.Lock())``.
    """
    if not isinstance(value, ast.Call):
        return None
    tail = tail_name(value.func)
    if tail in LOCK_FACTORIES:
        return tail
    if tail == "maybe_witness":
        for arg in value.args:
            inner = _lock_factory_of(arg)
            if inner is not None:
                return inner
    return None


def _self_attr_target(stmt: ast.stmt) -> tuple[str, ast.expr] | None:
    """``(attr, value)`` when *stmt* is a single ``self.attr = value``."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target, value = stmt.targets[0], stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        target, value = stmt.target, stmt.value
    else:
        return None
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr, value
    return None


def _scan_instance_attrs(cls: ClassDef) -> None:
    """Fill lock/int/mutable instance-attribute maps from method bodies."""
    for stmt in cls.node.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        in_init = stmt.name == "__init__"
        for node in ast.walk(stmt):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            hit = _self_attr_target(node)
            if hit is None:
                continue
            attr, value = hit
            factory = _lock_factory_of(value)
            if factory is not None:
                cls.lock_attrs.setdefault(attr, factory)
            elif in_init:
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, int)
                    and not isinstance(value.value, bool)
                ):
                    cls.int_attrs.setdefault(attr, value.value)
                elif isinstance(value, (ast.Dict, ast.List, ast.Set)) or (
                    isinstance(value, ast.Call)
                    and tail_name(value.func) in _MUTABLE_FACTORIES
                ):
                    cls.mutable_attrs.add(attr)


def _collect_definitions(mod: ModuleInfo) -> None:
    """Populate ``mod.classes`` and ``mod.functions`` in source order."""

    def visit(node: ast.AST, owner: ClassDef | None) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                attrs: dict[str, ast.expr] = {}
                for stmt in child.body:
                    if isinstance(stmt, ast.Assign):
                        for target in stmt.targets:
                            if isinstance(target, ast.Name):
                                attrs.setdefault(target.id, stmt.value)
                    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                        if isinstance(stmt.target, ast.Name):
                            attrs.setdefault(stmt.target.id, stmt.value)
                cls = ClassDef(
                    module=mod,
                    node=child,
                    name=child.name,
                    bases=[
                        b for b in (tail_name(base) for base in child.bases) if b
                    ],
                    decorators=[
                        d
                        for d in (tail_name(dec) for dec in child.decorator_list)
                        if d
                    ],
                    attrs=attrs,
                )
                _scan_instance_attrs(cls)
                mod.classes.append(cls)
                visit(child, cls)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = (
                    f"{owner.name}.{child.name}" if owner is not None else child.name
                )
                mod.functions.append(
                    FunctionInfo(
                        module=mod,
                        node=child,
                        name=child.name,
                        qualname=qual,
                        owner=owner,
                        is_async=isinstance(child, ast.AsyncFunctionDef),
                    )
                )
                # Nested defs keep the innermost *class* owner: a helper
                # closure inside a method still belongs to that class for
                # lock-identity resolution.
                visit(child, owner)
            else:
                visit(child, owner)

    visit(mod.tree, None)


def _display_path(path: Path, roots: list[Path]) -> str:
    """Path as reported in findings: relative to cwd when possible."""
    for base in (Path.cwd(), *roots):
        try:
            return path.relative_to(base.resolve()).as_posix()
        except ValueError:
            continue
    return path.as_posix()


def build_model(paths: Iterable[Path]) -> ProjectModel:
    """Parse every Python file under *paths* into a :class:`ProjectModel`."""
    roots = [p if p.is_dir() else p.parent for p in paths]
    modules: list[ModuleInfo] = []
    failures: list[Finding] = []
    for file in iter_python_files(paths):
        relpath = _display_path(file, roots)
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", None) or 1
            failures.append(
                Finding(
                    path=relpath,
                    line=int(line),
                    col=0,
                    rule="REPRO000",
                    message=f"could not parse module: {exc}",
                )
            )
            continue
        mod = ModuleInfo(
            path=file,
            relpath=relpath,
            tree=tree,
            source_lines=source.splitlines(),
            noqa=_collect_noqa(source),
        )
        mod.imports = _collect_imports(tree)
        _collect_definitions(mod)
        modules.append(mod)
    return ProjectModel(modules=modules, parse_failures=failures)
