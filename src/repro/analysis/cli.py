"""``python -m repro.analysis`` — the codec-contract gate.

Exit status is 0 when no findings survive suppression, 1 otherwise
(and 2 for usage errors), so the command slots directly into
``make check`` and CI.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import Sequence

from repro.analysis.config import find_pyproject, load_config
from repro.analysis.engine import default_paths, run_checks
from repro.analysis.findings import findings_to_json, format_github, format_text
from repro.analysis.rules import RULES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static codec-contract analyzer for the repro library.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format; `github` emits Actions ::error annotations "
        "(default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule codes to run exclusively, e.g. REPRO001,REPRO003",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule with its rationale and exit",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        help="print one rule's full documentation and exit, e.g. REPRO102",
    )
    parser.add_argument(
        "--strict-noqa",
        action="store_true",
        help="also report suppression comments that matched no finding "
        "(REPRO099)",
    )
    return parser


def _codes(raw: str | None) -> frozenset[str]:
    if not raw:
        return frozenset()
    return frozenset(c.strip().upper() for c in raw.split(",") if c.strip())


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in sorted(RULES.values(), key=lambda r: r.code):
            print(f"{rule.code}  {rule.title}")
            print(f"    {rule.rationale}")
        return 0
    if args.explain:
        code = args.explain.strip().upper()
        rule = RULES.get(code)
        if rule is None:
            known = ", ".join(sorted(RULES))
            print(
                f"unknown rule code: {code} (known: {known})", file=sys.stderr
            )
            return 2
        print(rule.explain_text)
        return 0

    paths = [p for p in args.paths] or default_paths()
    anchor = paths[0] if paths else Path.cwd()
    config = load_config(find_pyproject(anchor))
    select = _codes(args.select)
    ignore = _codes(args.ignore)
    if select or ignore or args.strict_noqa:
        config = replace(
            config,
            select=select or config.select,
            ignore=ignore | config.ignore,
            strict_noqa=config.strict_noqa or args.strict_noqa,
        )
    unknown = (select | ignore) - set(RULES) - {"REPRO000"}
    if unknown:
        print(f"unknown rule code(s): {', '.join(sorted(unknown))}", file=sys.stderr)
        return 2

    findings = run_checks(paths, config)
    if args.format == "json":
        print(findings_to_json(findings))
    elif args.format == "github":
        if findings:
            print(format_github(findings))
        else:
            print("repro.analysis: all checks passed", file=sys.stderr)
    elif findings:
        print(format_text(findings))
        print(f"\n{len(findings)} finding(s)", file=sys.stderr)
    else:
        print("repro.analysis: all checks passed", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
