"""Runtime lock-order witness: the dynamic half of REPRO102.

The static lock model (:func:`repro.analysis.concurrency._lock_model`)
is over-approximate but has one blind spot: calls made through stored
function values — ``self._cache_stats_fn()`` has no name to resolve, so
an ordering edge it creates is invisible to the AST.  This module closes
the loop the same way the differential suite cross-checks codecs:
observe reality, compare against the model.

Under ``REPRO_DEBUG=1`` (the same switch that arms the codec-metadata
asserts in ``repro.core.registry``), every lock the store/server stack
constructs is wrapped in a :class:`WitnessedLock` via
:func:`maybe_witness`.  The wrapper keeps a per-thread stack of held
locks and a global graph of observed acquisition-order edges, and

* raises :class:`LockOrderViolation` the moment an acquisition would
  close a cycle in the *observed* graph (the interleaving-independent
  deadlock signal — two code paths have used these locks in opposite
  orders, whether or not they collided this run);
* raises on re-acquiring a non-reentrant lock already held by the same
  thread (guaranteed self-deadlock);
* records single-flight leader/follower transitions reported by
  :meth:`repro.store.cache.DecodeCache.begin_flight`, asserting at most
  one live leader per key.

:func:`verify_against_static` then checks observed ⊆ static: every edge
reality produced must be one the analyzer predicted.  An edge the model
lacks means the model (or the code) is wrong — exactly the class of bug
the StoreMetrics.snapshot callbacks-under-lock pattern used to be.

With ``REPRO_DEBUG`` unset, :func:`maybe_witness` returns the lock
unchanged: zero overhead, identical types, nothing to configure.

``python -m repro.analysis.runtime_witness`` runs an in-process
ingest/query/compaction churn exercise with the witness armed and exits
non-zero on any violation; CI runs it inside the write-path smoke job.
"""

from __future__ import annotations

import os
import threading
from typing import Iterable

__all__ = [
    "LockOrderViolation",
    "WitnessedLock",
    "maybe_witness",
    "witness_enabled",
    "force_enable",
    "note_flight",
    "note_flight_done",
    "observed_edges",
    "witness_report",
    "reset",
    "verify_against_static",
]


class LockOrderViolation(RuntimeError):
    """An observed acquisition contradicts safe lock ordering."""


#: Explicit arming (tests, the CLI exercise) independent of the env var.
_forced = False


def witness_enabled() -> bool:
    return _forced or os.environ.get("REPRO_DEBUG") == "1"


def force_enable(on: bool = True) -> None:
    """Arm (or disarm) the witness regardless of ``REPRO_DEBUG``."""
    global _forced
    _forced = on


# ----------------------------------------------------------------------
# Global observation state
# ----------------------------------------------------------------------
#: Guards every structure below.  A plain lock, never witnessed — the
#: witness must not observe itself.
_state_lock = threading.Lock()
#: Observed ordering edges: (held, acquired) -> occurrence count.
_edges: dict[tuple[str, str], int] = {}
#: Adjacency view of ``_edges`` for cycle checks.
_adj: dict[str, set[str]] = {}
#: Per-key live single-flight leaders and follower counts.
_flight_leaders: dict[object, int] = {}
_flight_stats = {"leaders": 0, "followers": 0, "leader_collisions": 0}
_thread_state = threading.local()


def _held_stack() -> list[str]:
    stack = getattr(_thread_state, "stack", None)
    if stack is None:
        stack = []
        _thread_state.stack = stack
    return stack


def _reaches(src: str, dst: str) -> bool:
    """True when *dst* is reachable from *src* in the observed graph."""
    seen = {src}
    frontier = [src]
    while frontier:
        node = frontier.pop()
        if node == dst:
            return True
        for nxt in _adj.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return False


def _record_acquire(name: str, reentrant: bool) -> None:
    stack = _held_stack()
    if name in stack:
        if not reentrant:
            raise LockOrderViolation(
                f"thread re-acquires non-reentrant lock {name} it already "
                f"holds (stack: {' -> '.join(stack)}); guaranteed deadlock"
            )
        stack.append(name)  # balanced pop on release, no new edge
        return
    held = stack[-1] if stack else None
    if held is not None:
        with _state_lock:
            edge = (held, name)
            if edge not in _edges and _reaches(name, held):
                # Adding held -> name would close a cycle: some other
                # path has already been observed taking these locks in
                # the opposite order.
                raise LockOrderViolation(
                    f"lock-order inversion: acquiring {name} while "
                    f"holding {held}, but the opposite order was already "
                    "observed; threads interleaving these paths deadlock"
                )
            _edges[edge] = _edges.get(edge, 0) + 1
            _adj.setdefault(held, set()).add(name)
    stack.append(name)


def _record_release(name: str) -> None:
    stack = _held_stack()
    if stack and stack[-1] == name:
        stack.pop()
    elif name in stack:  # out-of-order release: tolerate, stay balanced
        stack.reverse()
        stack.remove(name)
        stack.reverse()


class WitnessedLock:
    """A lock proxy that reports acquisition order to the witness.

    Duck-types the ``threading.Lock``/``RLock`` surface the repository
    uses (``with``, ``acquire``/``release``, ``locked``).  The name is
    the lock's *static identity* — ``"DecodeCache._lock"`` — so observed
    edges compare directly against the analyzer's model.
    """

    __slots__ = ("name", "_inner", "_reentrant")

    def __init__(self, name: str, inner, reentrant: bool | None = None) -> None:
        self.name = name
        self._inner = inner
        if reentrant is None:
            reentrant = "RLock" in type(inner).__name__
        self._reentrant = reentrant

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            try:
                _record_acquire(self.name, self._reentrant)
            except LockOrderViolation:
                self._inner.release()
                raise
        return got

    def release(self) -> None:
        self._inner.release()
        _record_release(self.name)

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> "WitnessedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WitnessedLock({self.name!r}, {self._inner!r})"


def maybe_witness(name: str, lock):
    """Wrap *lock* for witnessing when armed; return it unchanged otherwise.

    Call sites name locks with their static identity::

        self._lock = maybe_witness("DecodeCache._lock", threading.Lock())

    (The analyzer's walker recognises this wrapping, so the attribute is
    still discovered as a lock by the REPRO101/102/107 rules.)
    """
    if not witness_enabled():
        return lock
    return WitnessedLock(name, lock)


# ----------------------------------------------------------------------
# Single-flight transitions
# ----------------------------------------------------------------------
def note_flight(key: object, leader: bool) -> None:
    """Record one ``begin_flight`` outcome; assert leader uniqueness."""
    if not witness_enabled():
        return
    with _state_lock:
        if leader:
            _flight_stats["leaders"] += 1
            if _flight_leaders.get(key, 0) > 0:
                _flight_stats["leader_collisions"] += 1
                raise LockOrderViolation(
                    f"single-flight invariant broken: second leader "
                    f"elected for in-flight key {key!r}"
                )
            _flight_leaders[key] = 1
        else:
            _flight_stats["followers"] += 1


def note_flight_done(key: object) -> None:
    if not witness_enabled():
        return
    with _state_lock:
        _flight_leaders.pop(key, None)


# ----------------------------------------------------------------------
# Reporting and verification
# ----------------------------------------------------------------------
def observed_edges() -> dict[tuple[str, str], int]:
    with _state_lock:
        return dict(_edges)


def witness_report() -> dict:
    """JSON-able summary of everything observed since the last reset."""
    with _state_lock:
        return {
            "edges": sorted(f"{a} -> {b} (x{n})" for (a, b), n in _edges.items()),
            "locks": sorted(
                {x for edge in _edges for x in edge}
            ),
            "flights": dict(_flight_stats),
            "live_flight_leaders": len(_flight_leaders),
        }


def reset() -> None:
    """Clear all observations (per-test isolation)."""
    with _state_lock:
        _edges.clear()
        _adj.clear()
        _flight_leaders.clear()
        for k in _flight_stats:
            _flight_stats[k] = 0


def verify_against_static(paths: Iterable | None = None) -> list[str]:
    """Check the observed graph against the analyzer's lock model.

    Every observed edge between locks the static model knows must be an
    edge the model predicts (observed ⊆ static; the model is an
    over-approximation, so the converse does not hold).  Edges touching
    locks the model has never heard of — ad-hoc test locks — are
    ignored.  Returns human-readable mismatch descriptions, empty when
    consistent.
    """
    from pathlib import Path

    from repro.analysis.concurrency import _lock_model
    from repro.analysis.config import find_pyproject, load_config
    from repro.analysis.engine import default_paths
    from repro.analysis.walker import build_model

    resolved = [Path(p) for p in paths] if paths else default_paths()
    config = load_config(find_pyproject(resolved[0]))
    model = build_model(resolved)
    static_edges, _trans = _lock_model(model, config)
    known = {
        f"{cls.name}.{attr}"
        for cls in model.iter_classes()
        for attr in cls.lock_attrs
    }
    problems = []
    for (held, acquired), count in observed_edges().items():
        if held not in known or acquired not in known:
            continue
        if (held, acquired) not in static_edges:
            problems.append(
                f"observed lock-order edge {held} -> {acquired} (x{count}) "
                "is absent from the static model; either the model lost an "
                "edge source (check _lock_model call resolution) or code "
                "acquires locks in an order the analyzer cannot see"
            )
    return problems


# ----------------------------------------------------------------------
# Churn exercise (CLI): drive the real write/read path under the witness
# ----------------------------------------------------------------------
def run_exercise(
    *, ops: int = 240, threads: int = 4, seed: int = 7
) -> dict:
    """Ingest/query/compact churn with every lock witnessed.

    Mirrors the write-path smoke scenario in-process: writer threads
    push batches through the WAL, reader threads hammer cached queries
    (forcing single-flight elections), a compactor rewrites terms, and
    metrics snapshots run concurrently — while the witness records every
    acquisition edge and flight transition.  Returns the report dict;
    raises :class:`LockOrderViolation` on an inversion.
    """
    import random
    import tempfile

    force_enable(True)
    reset()
    # Imported here, after arming, purely for symmetry with the CLI —
    # lock wrapping happens at *construction*, not import, time.
    from repro.server.admission import AdmissionController
    from repro.store.cache import DecodeCache, PlanResultCache
    from repro.store.engine import QueryEngine
    from repro.store.segments import WritablePostingStore

    rng = random.Random(seed)
    terms = [f"t{i}" for i in range(8)]
    errors: list[BaseException] = []

    with tempfile.TemporaryDirectory(prefix="repro-witness-") as tmp:
        store = WritablePostingStore.open(tmp)
        store.create_shard("s0", codec="Roaring", universe=16_384)
        # Seed and compact so every term has a compressed base list:
        # the readers then exercise the cached decode (and single-flight)
        # path instead of delta-only overlays.
        for term in terms:
            store.append("s0", term, sorted(rng.sample(range(16_384), 64)))
        store.compact()
        engine = QueryEngine(
            store,
            cache=DecodeCache(max_entries=64),
            plan_cache=PlanResultCache(max_entries=64),
            max_workers=threads,
        )
        admission = AdmissionController(max_pending=threads * 2)

        def writer(worker: int) -> None:
            r = random.Random(seed + worker)
            for i in range(ops):
                term = r.choice(terms)
                vals = [r.randrange(10_000) for _ in range(8)]
                if r.random() < 0.2:
                    store.delete("s0", term, vals[:2])
                else:
                    store.ingest_batch([("add", "s0", term, vals)])

        def reader(worker: int) -> None:
            r = random.Random(seed * 31 + worker)
            for i in range(ops):
                if admission.try_acquire():
                    try:
                        a, b = r.sample(terms, 2)
                        engine.execute(f"{a} OR {b}")
                    finally:
                        admission.release()
                if i % 16 == 0:
                    engine.metrics.snapshot()
                    store.write_stats()

        def compactor() -> None:
            for _ in range(max(4, ops // 40)):
                store.compact()

        def run(fn, *args) -> threading.Thread:
            def target() -> None:
                try:
                    fn(*args)
                except BaseException as exc:  # collected, re-raised below
                    errors.append(exc)

            t = threading.Thread(target=target, daemon=True)
            t.start()
            return t

        workers = [run(writer, w) for w in range(max(1, threads // 2))]
        workers += [run(reader, w) for w in range(max(1, threads // 2))]
        workers.append(run(compactor))
        for t in workers:
            t.join(timeout=120)

        # Stampede phase: a cold key hit by every thread at once must
        # elect exactly one single-flight leader.
        assert engine.cache is not None
        engine.cache.clear()
        barrier = threading.Barrier(threads)

        def stampede() -> None:
            barrier.wait()
            store.decode_term("s0", terms[0], cache=engine.cache)

        herd = [run(stampede) for _ in range(threads)]
        for t in herd:
            t.join(timeout=60)
        engine.close()
        store.close()

    if errors:
        raise errors[0]
    report = witness_report()
    report["static_mismatches"] = verify_against_static()
    return report


def main(argv: list[str] | None = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.runtime_witness",
        description="Run the lock-order witness churn exercise.",
    )
    parser.add_argument("--ops", type=int, default=240, help="ops per worker")
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    try:
        report = run_exercise(ops=args.ops, threads=args.threads, seed=args.seed)
    except LockOrderViolation as exc:
        print(json.dumps({"ok": False, "violation": str(exc)}, indent=2))
        return 1
    ok = not report["static_mismatches"] and not report["flights"][
        "leader_collisions"
    ]
    print(json.dumps({"ok": ok, **report}, indent=2))
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    # `python -m` executes this file as `__main__`, a *second* module
    # instance; arming that copy would leave the one the store imports
    # disarmed.  Delegate to the canonical instance.
    from repro.analysis import runtime_witness as _canonical

    raise SystemExit(_canonical.main())

