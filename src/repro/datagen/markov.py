"""Markov (clustered) posting-list generator (paper Section 5, following
Wu, Otoo & Shoshani's model).

A two-state chain walks the domain: from state 0 it switches to 1 with
probability ``p = 1/f``; from state 1 it switches back with probability
``q = ω / ((1 − ω) · f)`` where f is the clustering factor (the paper
uses f = 8) and ω the target density n/d.  Positions visited in state 1
form the list, so 1-bits arrive in runs of expected length ≈ f — the
clustered structure that favours run-length bitmap codecs.

The chain is simulated run-by-run (alternating geometric sojourn times),
which is exact and vectorises; the result is then adjusted by at most a
few elements to hit the requested length n precisely.
"""

from __future__ import annotations

import numpy as np

#: The paper's clustering factor ("which is 8 in our experiments").
DEFAULT_CLUSTERING = 8.0


def markov_list(
    n: int,
    domain: int,
    clustering: float = DEFAULT_CLUSTERING,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """*n* distinct values from ``[0, domain)`` with Markov clustering."""
    if n > domain:
        raise ValueError(f"cannot draw {n} distinct values from [0, {domain})")
    rng = np.random.default_rng(rng)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == domain:
        return np.arange(domain, dtype=np.int64)
    omega = n / domain
    # The paper prints p = 1/f and q = ω/((1−ω)f), but that assignment
    # yields stationary density 1−ω instead of ω (π₁ = p/(p+q)); the
    # formulas are swapped in the text.  With p(0→1) = ω/((1−ω)f) and
    # q(1→0) = 1/f the density is exactly ω and 1-runs average f — the
    # behaviour Wu et al.'s model intends.
    p = omega / ((1.0 - omega) * clustering)
    q = 1.0 / clustering
    p = min(p, 1.0)
    positions = _simulate_runs(rng, domain, p, q)
    return _adjust_to_length(rng, positions, n, domain)


def _simulate_runs(
    rng: np.random.Generator, domain: int, p: float, q: float
) -> np.ndarray:
    """1-positions of the chain over [0, domain), via geometric sojourns."""
    # Expected sojourns: 1/p in state 0, 1/q in state 1.  Draw batches of
    # alternating runs until the walk covers the domain.
    expected_cycle = 1.0 / p + 1.0 / q
    batch = max(16, int(domain / expected_cycle * 1.3) + 16)
    zero_runs = rng.geometric(p, size=batch).astype(np.int64)
    one_runs = rng.geometric(q, size=batch).astype(np.int64)
    while int(zero_runs.sum() + one_runs.sum()) < domain:
        zero_runs = np.concatenate(
            (zero_runs, rng.geometric(p, size=batch).astype(np.int64))
        )
        one_runs = np.concatenate(
            (one_runs, rng.geometric(q, size=batch).astype(np.int64))
        )
    # Interleave: z0, o0, z1, o1, ... and locate each 1-run's start.
    interleaved = np.empty(zero_runs.size + one_runs.size, dtype=np.int64)
    interleaved[0::2] = zero_runs
    interleaved[1::2] = one_runs
    starts = np.cumsum(interleaved) - interleaved
    one_starts = starts[1::2]
    keep = one_starts < domain
    one_starts = one_starts[keep]
    one_lens = one_runs[: one_starts.size]
    one_lens = np.minimum(one_lens, domain - one_starts)
    total = int(one_lens.sum())
    ramp = np.arange(total, dtype=np.int64)
    seg = np.cumsum(one_lens) - one_lens
    return np.repeat(one_starts, one_lens) + (ramp - np.repeat(seg, one_lens))


def _adjust_to_length(
    rng: np.random.Generator, positions: np.ndarray, n: int, domain: int
) -> np.ndarray:
    """Trim or top up a clustered draw to exactly *n* elements."""
    if positions.size > n:
        keep = np.sort(rng.choice(positions.size, size=n, replace=False))
        return positions[keep]
    missing = n - positions.size
    if missing:
        present = np.zeros(domain, dtype=bool)
        present[positions] = True
        absent = np.flatnonzero(~present)
        extra = rng.choice(absent.size, size=missing, replace=False)
        positions = np.sort(np.concatenate((positions, absent[extra])))
    return positions.astype(np.int64)
