"""Zipf posting-list generator (paper Section 5).

The paper's model: value k (1-based rank over the domain) is *included*
with probability proportional to ``1 / k^f`` where f is the skewness
factor.  Long lists therefore concentrate at the beginning of the domain
— the effect that makes zipf lists degenerate to ``{1, 2, 3, ...}`` at
1 billion elements (Figure 3h discussion).

Drawing each of d = 2^31 Bernoulli variables is infeasible, so the
generator samples *n* distinct ranks with the same inclusion weights via
weighted sampling over rank space, which yields the identical
distribution of included sets conditioned on the list size.
"""

from __future__ import annotations

import numpy as np


def zipf_list(
    n: int,
    domain: int,
    skew: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """*n* distinct values from ``[0, domain)`` with Zipf(f=skew) inclusion.

    Rank k (0-based position in the domain) is included with weight
    ``1 / (k+1)^skew``; the result is the sorted set of included values.
    """
    if n > domain:
        raise ValueError(f"cannot draw {n} distinct values from [0, {domain})")
    rng = np.random.default_rng(rng)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == domain:
        return np.arange(domain, dtype=np.int64)
    # Inverse-CDF sampling over the continuous Zipf envelope: the CDF of
    # the weight 1/x^f on [1, d+1] is analytically invertible, giving a
    # draw per sample in O(1); duplicates are rejected until n distinct
    # ranks are collected.
    picked = _draw_distinct(rng, n, domain, skew)
    return np.sort(picked).astype(np.int64)


def _draw_distinct(
    rng: np.random.Generator, n: int, domain: int, skew: float
) -> np.ndarray:
    out = np.empty(0, dtype=np.int64)
    want = n
    while out.size < n:
        u = rng.random(int(want * 1.3) + 16)
        draws = _inverse_cdf(u, domain, skew)
        out = np.unique(np.concatenate((out, draws)))
        want = n - out.size
    if out.size > n:
        keep = rng.choice(out.size, size=n, replace=False)
        out = out[keep]
    return out


def _inverse_cdf(u: np.ndarray, domain: int, skew: float) -> np.ndarray:
    """Map uniform draws to 0-based ranks under the 1/x^skew envelope."""
    d = float(domain)
    if abs(skew - 1.0) < 1e-9:
        x = np.power(d + 1.0, u)  # CDF ∝ log(x), inverse = (d+1)^u
    else:
        a = 1.0 - skew
        x = np.power(1.0 + u * (np.power(d + 1.0, a) - 1.0), 1.0 / a)
    ranks = np.floor(x).astype(np.int64) - 1
    return np.clip(ranks, 0, domain - 1)
