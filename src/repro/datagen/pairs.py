"""Correlated list workloads for the intersection/union experiments.

Tables 1–3 of the paper intersect two lists drawn from the same
distribution with a controlled size ratio θ = |L2| / |L1|; this module
packages that construction.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datagen.markov import markov_list
from repro.datagen.uniform import uniform_list
from repro.datagen.zipf import zipf_list

_GENERATORS: dict[str, Callable[..., np.ndarray]] = {
    "uniform": uniform_list,
    "zipf": zipf_list,
    "markov": markov_list,
}


def generator(distribution: str) -> Callable[..., np.ndarray]:
    """Look up a generator by the paper's distribution name."""
    try:
        return _GENERATORS[distribution]
    except KeyError:
        known = ", ".join(sorted(_GENERATORS))
        raise ValueError(
            f"unknown distribution {distribution!r}; known: {known}"
        ) from None


def list_pair(
    distribution: str,
    n_long: int,
    ratio: int,
    domain: int,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """(short, long) lists with |long| = n_long and |long|/|short| = ratio."""
    rng = np.random.default_rng(rng)
    gen = generator(distribution)
    long_ = gen(n_long, domain, rng=rng)
    short = gen(max(1, n_long // ratio), domain, rng=rng)
    return short, long_


def list_group(
    distribution: str,
    sizes: list[int],
    domain: int,
    rng: np.random.Generator | int | None = None,
) -> list[np.ndarray]:
    """Independent same-distribution lists with the given sizes."""
    rng = np.random.default_rng(rng)
    gen = generator(distribution)
    return [gen(size, domain, rng=rng) for size in sizes]
