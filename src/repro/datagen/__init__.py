"""Synthetic posting-list generators (paper Section 5).

Three distributions over a domain of size d:

* **uniform** — every value included with equal probability;
* **zipf** — value k included with probability ∝ 1/k^f (skew f), so the
  list concentrates at the start of the domain;
* **markov** — a two-state chain with transition probabilities
  p = 1/f (0→1) and q = ω / ((1−ω)·f) (1→0), clustering factor f and
  density ω, producing runs of consecutive values (Wu et al.'s model).

Plus :func:`list_pair` / :func:`list_group` helpers to build the
correlated workloads the intersection/union experiments need.
"""

from repro.datagen.markov import markov_list
from repro.datagen.pairs import list_group, list_pair
from repro.datagen.uniform import uniform_list
from repro.datagen.zipf import zipf_list

__all__ = [
    "uniform_list",
    "zipf_list",
    "markov_list",
    "list_pair",
    "list_group",
]
