"""Uniform posting-list generator (paper Section 5: "each value is
selected with the same probability")."""

from __future__ import annotations

import numpy as np


def uniform_list(
    n: int, domain: int, rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """*n* distinct values drawn uniformly from ``[0, domain)``, sorted.

    Args:
        n: list length (≤ domain).
        domain: exclusive upper bound (the paper's domain size d).
        rng: a Generator, a seed, or None for fresh entropy.
    """
    if n > domain:
        raise ValueError(f"cannot draw {n} distinct values from [0, {domain})")
    rng = np.random.default_rng(rng)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # For sparse draws, rejection sampling beats materialising the domain.
    if n < domain // 4:
        picked = np.unique(rng.integers(0, domain, size=int(n * 1.2) + 16))
        while picked.size < n:
            extra = rng.integers(0, domain, size=n)
            picked = np.unique(np.concatenate((picked, extra)))
        idx = rng.choice(picked.size, size=n, replace=False)
        return np.sort(picked[idx]).astype(np.int64)
    return np.sort(rng.choice(domain, size=n, replace=False)).astype(np.int64)
