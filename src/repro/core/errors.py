"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing user mistakes (:class:`InvalidInputError`) from data
corruption (:class:`CorruptPayloadError`).
"""


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class CodecError(ReproError):
    """Base class for errors raised while compressing or decompressing."""


class InvalidInputError(CodecError, ValueError):
    """The caller supplied an input the codec cannot accept.

    Typical causes: unsorted or duplicated posting lists, negative values,
    or values outside the codec's representable domain.
    """


class DomainOverflowError(InvalidInputError):
    """A value exceeds the maximum the codec's wire format can represent."""


class CorruptPayloadError(CodecError):
    """A compressed payload failed structural validation during decoding."""


class UnknownCodecError(ReproError, KeyError):
    """A codec name was requested that is not present in the registry."""
