"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still distinguishing user mistakes (:class:`InvalidInputError`) from data
corruption (:class:`CorruptPayloadError`).

Every class in the tree carries a ``retryable`` class attribute: ``True``
means the operation failed for a transient, environmental reason (the
server was busy, the socket dropped) and the *same* request may succeed
if re-sent; ``False`` means re-sending the same bytes re-fails (bad
input, corrupt data, contract violations).  The cluster router's
failover and hedging logic keys off this single bit — see
``repro.api.errors`` for the full annotated tree.
"""


class ReproError(Exception):
    """Base class for every exception raised by the repro library.

    ``retryable`` defaults to ``False``: most library errors describe the
    request or the data, and repeating them repeats the failure.
    Transient serving-layer errors override it to ``True``.
    """

    retryable: bool = False


class CodecError(ReproError):
    """Base class for errors raised while compressing or decompressing."""


class InvalidInputError(CodecError, ValueError):
    """The caller supplied an input the codec cannot accept.

    Typical causes: unsorted or duplicated posting lists, negative values,
    or values outside the codec's representable domain.
    """


class DomainOverflowError(InvalidInputError):
    """A value exceeds the maximum the codec's wire format can represent."""


class CorruptPayloadError(CodecError):
    """A compressed payload failed structural validation during decoding."""


class UnknownCodecError(ReproError, KeyError):
    """A codec name was requested that is not present in the registry."""
