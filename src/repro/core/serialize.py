"""Binary serialisation of compressed sets.

A downstream system wants to build an index once and load it later, so
every codec's payload round-trips through a self-describing binary
format::

    from repro.core.serialize import dumps, loads

    blob = dumps(codec.compress(values))
    cs = loads(blob)                      # ready for intersect/decompress

Format (little-endian):

* magic ``RPRO``, format version (u8);
* codec name (u16 length + UTF-8);
* ``n`` (u64), ``universe`` (u64), ``size_bytes`` (u64);
* a payload section of *tagged fields*, each ``(u8 kind, body)`` where
  kind 0 = i64 scalar, kind 1 = numpy array (dtype code + u64 length +
  raw bytes), kind 2 = container list (Roaring).

The wire `size_bytes` recorded at compression time is preserved, so the
paper's space metric survives a save/load cycle exactly.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.base import CompressedIntegerSet
from repro.core.errors import CorruptPayloadError
from repro.core.registry import get_codec

_MAGIC = b"RPRO"
_VERSION = 1

_DTYPE_CODES: dict[str, int] = {
    "uint8": 0,
    "uint16": 1,
    "uint32": 2,
    "uint64": 3,
    "int32": 4,
    "int64": 5,
}
_CODES_DTYPE = {v: np.dtype(k) for k, v in _DTYPE_CODES.items()}

_KIND_SCALAR = 0
_KIND_ARRAY = 1
_KIND_CONTAINERS = 2


# ----------------------------------------------------------------------
# Field-level primitives
# ----------------------------------------------------------------------
def _write_scalar(out: bytearray, value: int) -> None:
    out.append(_KIND_SCALAR)
    out += struct.pack("<q", int(value))


def _write_array(out: bytearray, arr: np.ndarray) -> None:
    code = _DTYPE_CODES.get(arr.dtype.name)
    if code is None:
        raise ValueError(f"unsupported payload dtype {arr.dtype}")
    out.append(_KIND_ARRAY)
    out.append(code)
    out += struct.pack("<Q", arr.size)
    out += np.ascontiguousarray(arr).tobytes()


def _write_containers(out: bytearray, containers: tuple) -> None:
    out.append(_KIND_CONTAINERS)
    out += struct.pack("<Q", len(containers))
    for kind, data in containers:
        out.append(0 if kind == "array" else 1)
        _write_array(out, data)


class _Reader:
    def __init__(self, data: bytes, pos: int = 0) -> None:
        self.data = data
        self.pos = pos

    def take(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise CorruptPayloadError("serialised set is truncated")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def field(self):
        kind = self.u8()
        if kind == _KIND_SCALAR:
            return self.i64()
        if kind == _KIND_ARRAY:
            return self._array()
        if kind == _KIND_CONTAINERS:
            count = self.u64()
            out = []
            for _ in range(count):
                ckind = "array" if self.u8() == 0 else "bitmap"
                marker = self.u8()
                if marker != _KIND_ARRAY:
                    raise CorruptPayloadError("container body must be an array")
                out.append((ckind, self._array()))
            return tuple(out)
        raise CorruptPayloadError(f"unknown field kind {kind}")

    def _array(self) -> np.ndarray:
        code = self.u8()
        dtype = _CODES_DTYPE.get(code)
        if dtype is None:
            raise CorruptPayloadError(f"unknown dtype code {code}")
        size = self.u64()
        raw = self.take(size * dtype.itemsize)
        return np.frombuffer(raw, dtype=dtype).copy()


# ----------------------------------------------------------------------
# Payload codecs (by payload class name)
# ----------------------------------------------------------------------
def _pack_payload(out: bytearray, payload) -> None:
    from repro.bitmaps.roaring import RoaringPayload
    from repro.bitmaps.valwah import VALWAHPayload
    from repro.invlists.blocks import BlockedPayload
    from repro.invlists.pef_optimal import OptimalPEFPayload

    if isinstance(payload, CompressedIntegerSet):
        # Wrapper codecs (e.g. the adaptive hybrid) nest a full set.
        out += b"C"
        nested = dumps(payload)
        out += struct.pack("<Q", len(nested))
        out += nested
    elif isinstance(payload, OptimalPEFPayload):
        out += b"P"
        _write_array(out, payload.stream)
        _write_array(out, payload.offsets)
        _write_array(out, payload.firsts)
        _write_array(out, payload.counts)
        _write_scalar(out, payload.wire_bytes)
    elif isinstance(payload, np.ndarray):
        out += b"A"
        _write_array(out, payload)
    elif isinstance(payload, BlockedPayload):
        out += b"B"
        _write_array(out, payload.stream)
        _write_array(out, payload.offsets)
        _write_array(out, payload.firsts)
        _write_scalar(out, payload.wire_bytes)
    elif isinstance(payload, RoaringPayload):
        out += b"R"
        _write_array(out, payload.keys)
        _write_containers(out, payload.containers)
    elif isinstance(payload, VALWAHPayload):
        out += b"V"
        _write_scalar(out, payload.segment_bits)
        _write_scalar(out, payload.n_units)
        _write_array(out, payload.packed)
    else:
        raise ValueError(
            f"cannot serialise payload of type {type(payload).__name__}"
        )


def _unpack_payload(reader: _Reader):
    from repro.bitmaps.roaring import RoaringPayload
    from repro.bitmaps.valwah import VALWAHPayload
    from repro.invlists.blocks import BlockedPayload
    from repro.invlists.pef_optimal import OptimalPEFPayload

    tag = reader.take(1)
    if tag == b"C":
        length = reader.u64()
        return loads(reader.take(length))
    if tag == b"P":
        return OptimalPEFPayload(
            stream=reader.field(),
            offsets=reader.field(),
            firsts=reader.field(),
            counts=reader.field(),
            wire_bytes=reader.field(),
        )
    if tag == b"A":
        return reader.field()
    if tag == b"B":
        return BlockedPayload(
            stream=reader.field(),
            offsets=reader.field(),
            firsts=reader.field(),
            wire_bytes=reader.field(),
        )
    if tag == b"R":
        return RoaringPayload(keys=reader.field(), containers=reader.field())
    if tag == b"V":
        return VALWAHPayload(
            segment_bits=reader.field(),
            n_units=reader.field(),
            packed=reader.field(),
        )
    raise CorruptPayloadError(f"unknown payload tag {tag!r}")


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def dumps(cs: CompressedIntegerSet) -> bytes:
    """Serialise a compressed set to a self-describing byte string."""
    out = bytearray()
    out += _MAGIC
    out.append(_VERSION)
    name = cs.codec_name.encode("utf-8")
    out += struct.pack("<H", len(name))
    out += name
    out += struct.pack("<QQQ", cs.n, cs.universe, cs.size_bytes)
    _pack_payload(out, cs.payload)
    return bytes(out)


def loads(data: bytes) -> CompressedIntegerSet:
    """Parse :func:`dumps` output back into a live compressed set.

    The codec must be present in the registry (it is looked up by name so
    the returned set plugs straight into ``get_codec(...).decompress``).
    """
    reader = _Reader(data)
    if reader.take(4) != _MAGIC:
        raise CorruptPayloadError("not a repro serialised set (bad magic)")
    version = reader.u8()
    if version != _VERSION:
        raise CorruptPayloadError(f"unsupported format version {version}")
    name_len = struct.unpack("<H", reader.take(2))[0]
    codec_name = reader.take(name_len).decode("utf-8")
    n, universe, size_bytes = struct.unpack("<QQQ", reader.take(24))
    tag = reader.data[reader.pos : reader.pos + 1]
    if tag not in (b"C", b"P"):
        # Core payloads decode through the registry, so an unknown codec
        # name is an early, clear error.  Wrapper/extension payloads
        # ("C"/"P") belong to unregistered codecs the caller holds an
        # instance of (AdaptiveCodec, OptimalPEFCodec).
        get_codec(codec_name)
    payload = _unpack_payload(reader)
    return CompressedIntegerSet(codec_name, payload, n, universe, size_bytes)


def dump(cs: CompressedIntegerSet, path) -> None:
    """Write :func:`dumps` output to a file path."""
    with open(path, "wb") as fh:
        fh.write(dumps(cs))


def load(path) -> CompressedIntegerSet:
    """Read a compressed set previously written with :func:`dump`."""
    with open(path, "rb") as fh:
        return loads(fh.read())
