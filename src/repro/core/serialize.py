"""Binary serialisation of compressed sets.

A downstream system wants to build an index once and load it later, so
every codec's payload round-trips through a self-describing binary
format::

    from repro.core.serialize import dumps, loads

    blob = dumps(codec.compress(values))
    cs = loads(blob)                      # ready for intersect/decompress

Format (little-endian):

* magic ``RPRO``, format version (u8);
* codec name (u16 length + UTF-8);
* ``n`` (u64), ``universe`` (u64), ``size_bytes`` (u64);
* a payload section of *tagged fields*, each ``(u8 kind, body)`` where
  kind 0 = i64 scalar, kind 1 = numpy array (dtype code + u64 length +
  raw bytes), kind 2 = container list (Roaring).

The wire `size_bytes` recorded at compression time is preserved, so the
paper's space metric survives a save/load cycle exactly.

Two field encodings share this header:

* version 1 — packed: array bytes follow their length header directly.
  This is the historical byte-stable encoding every ``.rpro`` file uses.
* version 2 — aligned: each array's raw bytes (and each nested set) are
  padded to an 8-byte boundary *relative to the blob start*.  A version-2
  blob placed at an 8-aligned file offset can therefore be parsed with
  :func:`loads_view` into arrays that are zero-copy views over the
  underlying buffer (an ``mmap``) instead of heap copies — the decode
  kernels consume them directly off the OS page cache.  The v3 mapped
  segment format (:mod:`repro.store.mapped`) stores one aligned blob per
  term.

:func:`loads` transparently reads both versions (copying); only
:func:`loads_view` demands version 2, because zero-copy parsing of
unaligned arrays would hand misaligned views to the kernels.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.base import CompressedIntegerSet
from repro.core.errors import CorruptPayloadError
from repro.core.registry import get_codec

_MAGIC = b"RPRO"
_VERSION = 1
#: Version byte of the aligned field encoding (see module docstring).
_VERSION_ALIGNED = 2
#: Alignment of array bodies in version-2 blobs, in bytes.
_ALIGN = 8

_DTYPE_CODES: dict[str, int] = {
    "uint8": 0,
    "uint16": 1,
    "uint32": 2,
    "uint64": 3,
    "int32": 4,
    "int64": 5,
}
_CODES_DTYPE = {v: np.dtype(k) for k, v in _DTYPE_CODES.items()}

_KIND_SCALAR = 0
_KIND_ARRAY = 1
_KIND_CONTAINERS = 2


# ----------------------------------------------------------------------
# Field-level primitives
# ----------------------------------------------------------------------
def _write_scalar(out: bytearray, value: int) -> None:
    out.append(_KIND_SCALAR)
    out += struct.pack("<q", int(value))


def _pad(out: bytearray) -> None:
    """Zero-fill *out* up to the next 8-byte boundary (aligned encoding).

    Padding is computed from the current length of the blob being built,
    so alignment is relative to the blob start — absolute alignment then
    holds for any blob placed at an 8-aligned offset.
    """
    out += b"\0" * (-len(out) % _ALIGN)


def _write_array(out: bytearray, arr: np.ndarray, aligned: bool = False) -> None:
    code = _DTYPE_CODES.get(arr.dtype.name)
    if code is None:
        raise ValueError(f"unsupported payload dtype {arr.dtype}")
    out.append(_KIND_ARRAY)
    out.append(code)
    out += struct.pack("<Q", arr.size)
    if aligned:
        _pad(out)
    out += np.ascontiguousarray(arr).tobytes()


def _write_containers(out: bytearray, containers: tuple, aligned: bool = False) -> None:
    out.append(_KIND_CONTAINERS)
    out += struct.pack("<Q", len(containers))
    for kind, data in containers:
        out.append(0 if kind == "array" else 1)
        _write_array(out, data, aligned)


class _Reader:
    """Sequential field parser over bytes or any buffer (``memoryview``).

    ``aligned`` selects the version-2 pad-skipping field grammar;
    ``zero_copy`` makes :meth:`_array` return ``np.frombuffer`` views
    over the underlying buffer instead of heap copies (the buffer must
    outlive the returned arrays — the mapped-segment handle guarantees
    that via refcounting).
    """

    def __init__(
        self,
        data,
        pos: int = 0,
        *,
        aligned: bool = False,
        zero_copy: bool = False,
    ) -> None:
        self.data = data
        self.pos = pos
        self.aligned = aligned
        self.zero_copy = zero_copy

    def take(self, n: int):
        if self.pos + n > len(self.data):
            raise CorruptPayloadError("serialised set is truncated")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def skip_pad(self) -> None:
        if self.aligned:
            self.take(-self.pos % _ALIGN)

    def u8(self) -> int:
        return self.take(1)[0]

    def u64(self) -> int:
        return struct.unpack("<Q", self.take(8))[0]

    def i64(self) -> int:
        return struct.unpack("<q", self.take(8))[0]

    def field(self):
        kind = self.u8()
        if kind == _KIND_SCALAR:
            return self.i64()
        if kind == _KIND_ARRAY:
            return self._array()
        if kind == _KIND_CONTAINERS:
            count = self.u64()
            out = []
            for _ in range(count):
                ckind = "array" if self.u8() == 0 else "bitmap"
                marker = self.u8()
                if marker != _KIND_ARRAY:
                    raise CorruptPayloadError("container body must be an array")
                out.append((ckind, self._array()))
            return tuple(out)
        raise CorruptPayloadError(f"unknown field kind {kind}")

    def _array(self) -> np.ndarray:
        code = self.u8()
        dtype = _CODES_DTYPE.get(code)
        if dtype is None:
            raise CorruptPayloadError(f"unknown dtype code {code}")
        size = self.u64()
        self.skip_pad()
        nbytes = size * dtype.itemsize
        if self.pos + nbytes > len(self.data):
            raise CorruptPayloadError("serialised set is truncated")
        if self.zero_copy:
            arr = np.frombuffer(self.data, dtype=dtype, count=size, offset=self.pos)
        else:
            arr = np.frombuffer(self.take(nbytes), dtype=dtype).copy()
            return arr
        self.pos += nbytes
        return arr


# ----------------------------------------------------------------------
# Payload codecs (by payload class name)
# ----------------------------------------------------------------------
def _pack_payload(out: bytearray, payload, aligned: bool = False) -> None:
    from repro.bitmaps.roaring import RoaringPayload
    from repro.bitmaps.valwah import VALWAHPayload
    from repro.invlists.blocks import BlockedPayload
    from repro.invlists.pef_optimal import OptimalPEFPayload

    if isinstance(payload, CompressedIntegerSet):
        # Wrapper codecs (e.g. the adaptive hybrid) nest a full set.
        out += b"C"
        nested = dumps(payload, aligned=aligned)
        out += struct.pack("<Q", len(nested))
        if aligned:
            # The nested blob starts 8-aligned so its internal (relative)
            # padding stays valid at the absolute offsets of the file.
            _pad(out)
        out += nested
    elif isinstance(payload, OptimalPEFPayload):
        out += b"P"
        _write_array(out, payload.stream, aligned)
        _write_array(out, payload.offsets, aligned)
        _write_array(out, payload.firsts, aligned)
        _write_array(out, payload.counts, aligned)
        _write_scalar(out, payload.wire_bytes)
    elif isinstance(payload, np.ndarray):
        out += b"A"
        _write_array(out, payload, aligned)
    elif isinstance(payload, BlockedPayload):
        out += b"B"
        _write_array(out, payload.stream, aligned)
        _write_array(out, payload.offsets, aligned)
        _write_array(out, payload.firsts, aligned)
        _write_scalar(out, payload.wire_bytes)
    elif isinstance(payload, RoaringPayload):
        out += b"R"
        _write_array(out, payload.keys, aligned)
        _write_containers(out, payload.containers, aligned)
    elif isinstance(payload, VALWAHPayload):
        out += b"V"
        _write_scalar(out, payload.segment_bits)
        _write_scalar(out, payload.n_units)
        _write_array(out, payload.packed, aligned)
    else:
        raise ValueError(
            f"cannot serialise payload of type {type(payload).__name__}"
        )


def _unpack_payload(reader: _Reader):
    from repro.bitmaps.roaring import RoaringPayload
    from repro.bitmaps.valwah import VALWAHPayload
    from repro.invlists.blocks import BlockedPayload
    from repro.invlists.pef_optimal import OptimalPEFPayload

    tag = bytes(reader.take(1))
    if tag == b"C":
        length = reader.u64()
        reader.skip_pad()
        nested = reader.take(length)
        if reader.zero_copy:
            return _loads(nested, zero_copy=True)
        return loads(nested)
    if tag == b"P":
        return OptimalPEFPayload(
            stream=reader.field(),
            offsets=reader.field(),
            firsts=reader.field(),
            counts=reader.field(),
            wire_bytes=reader.field(),
        )
    if tag == b"A":
        return reader.field()
    if tag == b"B":
        return BlockedPayload(
            stream=reader.field(),
            offsets=reader.field(),
            firsts=reader.field(),
            wire_bytes=reader.field(),
        )
    if tag == b"R":
        return RoaringPayload(keys=reader.field(), containers=reader.field())
    if tag == b"V":
        return VALWAHPayload(
            segment_bits=reader.field(),
            n_units=reader.field(),
            packed=reader.field(),
        )
    raise CorruptPayloadError(f"unknown payload tag {tag!r}")


# ----------------------------------------------------------------------
# Public API
# ----------------------------------------------------------------------
def dumps(cs: CompressedIntegerSet, *, aligned: bool = False) -> bytes:
    """Serialise a compressed set to a self-describing byte string.

    With ``aligned=True`` the blob uses the version-2 aligned field
    encoding, readable zero-copy via :func:`loads_view` when placed at
    an 8-aligned buffer offset.  The default (version 1) is byte-stable
    with every ``.rpro`` file ever written.
    """
    out = bytearray()
    out += _MAGIC
    out.append(_VERSION_ALIGNED if aligned else _VERSION)
    name = cs.codec_name.encode("utf-8")
    out += struct.pack("<H", len(name))
    out += name
    out += struct.pack("<QQQ", cs.n, cs.universe, cs.size_bytes)
    _pack_payload(out, cs.payload, aligned)
    return bytes(out)


def _loads(data, *, zero_copy: bool) -> CompressedIntegerSet:
    """Shared body of :func:`loads` and :func:`loads_view`."""
    if len(data) < 5:
        raise CorruptPayloadError("serialised set is truncated")
    if bytes(data[:4]) != _MAGIC:
        raise CorruptPayloadError("not a repro serialised set (bad magic)")
    version = data[4]
    if version not in (_VERSION, _VERSION_ALIGNED):
        raise CorruptPayloadError(f"unsupported format version {version}")
    aligned = version == _VERSION_ALIGNED
    if zero_copy and not aligned:
        raise CorruptPayloadError(
            "zero-copy parsing requires the aligned (version-2) encoding"
        )
    reader = _Reader(data, 5, aligned=aligned, zero_copy=zero_copy and aligned)
    name_len = struct.unpack("<H", reader.take(2))[0]
    codec_name = bytes(reader.take(name_len)).decode("utf-8")
    n, universe, size_bytes = struct.unpack("<QQQ", reader.take(24))
    tag = bytes(reader.data[reader.pos : reader.pos + 1])
    if tag not in (b"C", b"P"):
        # Core payloads decode through the registry, so an unknown codec
        # name is an early, clear error.  Wrapper/extension payloads
        # ("C"/"P") belong to unregistered codecs the caller holds an
        # instance of (AdaptiveCodec, OptimalPEFCodec).
        get_codec(codec_name)
    payload = _unpack_payload(reader)
    return CompressedIntegerSet(codec_name, payload, n, universe, size_bytes)


def loads(data: bytes) -> CompressedIntegerSet:
    """Parse :func:`dumps` output back into a live compressed set.

    The codec must be present in the registry (it is looked up by name so
    the returned set plugs straight into ``get_codec(...).decompress``).
    Both field encodings are accepted; payload arrays are always heap
    copies here — use :func:`loads_view` for zero-copy views.
    """
    return _loads(data, zero_copy=False)


def loads_view(view) -> CompressedIntegerSet:
    """Parse an *aligned* blob into a set whose arrays view the buffer.

    Args:
        view: a buffer (``memoryview``/``bytes``) holding one aligned
            blob, starting at an 8-aligned offset of its underlying
            mapping.  The buffer must outlive the returned arrays.

    Returns a set whose numpy payload arrays are zero-copy
    ``np.frombuffer`` views — read-only when the buffer is (an
    ``mmap.ACCESS_READ`` mapping is).  Raises
    :class:`~repro.core.errors.CorruptPayloadError` on any structural
    damage, including a packed (version-1) blob.
    """
    return _loads(view, zero_copy=True)


def dump(cs: CompressedIntegerSet, path) -> None:
    """Write :func:`dumps` output to a file path."""
    with open(path, "wb") as fh:
        fh.write(dumps(cs))


def load(path) -> CompressedIntegerSet:
    """Read a compressed set previously written with :func:`dump`."""
    with open(path, "rb") as fh:
        return loads(fh.read())
