"""Small vectorised array helpers shared across the library."""

from __future__ import annotations

import numpy as np


def gather_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat indices covering ``[starts[i], starts[i] + lengths[i])`` per i.

    The workhorse of the batched decoders: turns per-segment (start,
    length) descriptors into one fancy-index array so many stream ranges
    gather in a single pass.
    """
    total = int(lengths.sum())
    ramp = np.arange(total, dtype=np.int64)
    seg_start = np.cumsum(lengths) - lengths
    return np.repeat(starts, lengths) + (ramp - np.repeat(seg_start, lengths))


def segment_ramp(lengths: np.ndarray) -> np.ndarray:
    """``[0..l0-1, 0..l1-1, ...]`` for the given segment lengths."""
    total = int(lengths.sum())
    ramp = np.arange(total, dtype=np.int64)
    seg_start = np.cumsum(lengths) - lengths
    return ramp - np.repeat(seg_start, lengths)
