"""Input validation helpers shared by every codec.

The study operates on *posting lists*: strictly increasing sequences of
non-negative integers (equivalently, sets of positions of 1-bits in a
bitmap).  Every codec normalises its input through
:func:`as_posting_array` so downstream code can assume a well-formed
``numpy.int64`` array.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.errors import InvalidInputError

#: Largest value any codec in this library accepts (the paper uses
#: INTMAX = 2**31 - 1 as the domain bound).
MAX_VALUE = 2**31 - 1


def as_posting_array(values: Iterable[int] | np.ndarray) -> np.ndarray:
    """Normalise *values* into a validated ``int64`` posting array.

    Accepts any iterable of integers or a NumPy array.  The result is a
    C-contiguous ``numpy.int64`` array that is strictly increasing and
    bounded by :data:`MAX_VALUE`.  When the input is already a conforming
    array it is returned as-is (no copy); codecs never mutate it and
    never alias it into a compressed payload.

    Raises:
        InvalidInputError: if the input contains negative values,
            duplicates, is not sorted, or exceeds :data:`MAX_VALUE`.
    """
    arr = np.asarray(values)
    if arr.ndim == 0:
        raise InvalidInputError("posting list must be a sequence, got a scalar")
    if arr.ndim != 1:
        raise InvalidInputError(f"posting list must be 1-D, got shape {arr.shape}")
    if arr.size and not np.issubdtype(arr.dtype, np.integer):
        # Allow float arrays that are exactly integral (common when data
        # comes out of pandas/scipy), reject anything lossy.
        if not np.issubdtype(arr.dtype, np.floating):
            raise InvalidInputError(f"posting list must be integral, got dtype {arr.dtype}")
        as_int = arr.astype(np.int64)
        if not np.array_equal(as_int, arr):
            raise InvalidInputError("posting list contains non-integral values")
        arr = as_int
    arr = np.ascontiguousarray(arr, dtype=np.int64)
    ensure_sorted_unique(arr)
    return arr


def ensure_sorted_unique(arr: np.ndarray) -> None:
    """Validate that *arr* is a well-formed posting array.

    Raises:
        InvalidInputError: on negative values, values above
            :data:`MAX_VALUE`, or a non-strictly-increasing order.
    """
    if arr.size == 0:
        return
    if arr[0] < 0:
        raise InvalidInputError(f"posting list contains negative value {int(arr[0])}")
    if arr[-1] > MAX_VALUE:
        raise InvalidInputError(
            f"posting list value {int(arr[-1])} exceeds the 2^31-1 domain bound"
        )
    if arr.size > 1:
        deltas = np.diff(arr)
        if not (deltas > 0).all():
            bad = int(np.flatnonzero(deltas <= 0)[0])
            raise InvalidInputError(
                "posting list must be strictly increasing; "
                f"violation at index {bad}: {int(arr[bad])} -> {int(arr[bad + 1])}"
            )
