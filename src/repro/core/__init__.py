"""Common substrate shared by every codec: base classes, bit utilities,
input validation, and the codec registry.

The public surface re-exported here is what the rest of the library (and
downstream users writing their own codecs) build against.
"""

from repro.core.base import Capability, CompressedIntegerSet, IntegerSetCodec
from repro.core.decode import ArrayCache, DecodeObserver, decode
from repro.core.errors import (
    CodecError,
    CorruptPayloadError,
    DomainOverflowError,
    InvalidInputError,
    ReproError,
    UnknownCodecError,
)
from repro.core.registry import (
    all_codec_names,
    bitmap_codec_names,
    get_codec,
    invlist_codec_names,
    register_codec,
)
from repro.core.serialize import dump, dumps, load, loads
from repro.core.validation import as_posting_array, ensure_sorted_unique

__all__ = [
    "Capability",
    "CompressedIntegerSet",
    "IntegerSetCodec",
    "ReproError",
    "CodecError",
    "InvalidInputError",
    "CorruptPayloadError",
    "DomainOverflowError",
    "UnknownCodecError",
    "register_codec",
    "get_codec",
    "all_codec_names",
    "bitmap_codec_names",
    "invlist_codec_names",
    "as_posting_array",
    "ensure_sorted_unique",
    "decode",
    "ArrayCache",
    "DecodeObserver",
    "dumps",
    "loads",
    "dump",
    "load",
]
