"""Low-level bit manipulation helpers.

The C++ implementations in the paper lean on ``popcnt`` and ``ctz`` CPU
instructions (Appendix B.1).  Here the same roles are played by NumPy
vectorised kernels (for whole arrays of words) and by Python ``int``
operations (for single words inside codec inner loops — CPython's
``int.bit_count`` compiles down to the same ``popcnt``).
"""

from __future__ import annotations

import numpy as np

#: Bit widths used throughout the bitmap codecs.
WORD_BITS = 32

_BIT_POWERS_64 = (np.uint64(1) << np.arange(64, dtype=np.uint64))


def popcount(word: int) -> int:
    """Number of set bits in a non-negative Python int."""
    return word.bit_count()


def ctz(word: int, width: int = WORD_BITS) -> int:
    """Count trailing zeros of *word*; returns *width* when word == 0."""
    if word == 0:
        return width
    return (word & -word).bit_length() - 1


def popcount_array(words: np.ndarray) -> np.ndarray:
    """Vectorised popcount over an unsigned-integer array."""
    return np.bitwise_count(words)


def bits_to_positions(bits: np.ndarray, offset: int = 0) -> np.ndarray:
    """Positions of True entries in a boolean array, plus *offset*."""
    pos = np.flatnonzero(bits).astype(np.int64)
    if offset:
        pos += offset
    return pos


def positions_to_bits(positions: np.ndarray, length: int) -> np.ndarray:
    """Boolean array of *length* with True at each position."""
    bits = np.zeros(length, dtype=bool)
    if positions.size:
        bits[positions] = True
    return bits


def pack_groups(bits: np.ndarray, group_bits: int) -> np.ndarray:
    """Pack a boolean bit array into integer groups of *group_bits* bits.

    The array is zero-padded to a multiple of *group_bits*.  Bit 0 of each
    group corresponds to the lowest position in that group (little-endian
    within the group), matching how the word-aligned codecs number bits.

    Returns a ``uint64`` array of group values (valid for group_bits <= 63).
    """
    if group_bits > 63:
        raise ValueError("pack_groups supports at most 63-bit groups")
    n = bits.size
    n_groups = (n + group_bits - 1) // group_bits if n else 0
    if n_groups == 0:
        return np.empty(0, dtype=np.uint64)
    padded = np.zeros(n_groups * group_bits, dtype=bool)
    padded[:n] = bits
    matrix = padded.reshape(n_groups, group_bits).astype(np.uint64)
    return matrix @ _BIT_POWERS_64[:group_bits]


def unpack_groups(groups: np.ndarray, group_bits: int) -> np.ndarray:
    """Inverse of :func:`pack_groups`: expand group values into a bit array."""
    if groups.size == 0:
        return np.empty(0, dtype=bool)
    if group_bits <= 8:
        # Byte-sized groups (BBC) go through the unpackbits kernel rather
        # than a 64-bit shift matrix — same little-endian bit order.
        bits = np.unpackbits(
            groups.astype(np.uint8)[:, None], axis=1, bitorder="little"
        )
        if group_bits < 8:
            bits = np.ascontiguousarray(bits[:, :group_bits])
        return bits.view(np.bool_).reshape(-1)
    g = groups.astype(np.uint64, copy=False)[:, None]
    return ((g >> np.arange(group_bits, dtype=np.uint64)) & np.uint64(1)).astype(
        bool
    ).reshape(-1)


def positions_from_words(
    words: np.ndarray, word_bits: int, base: int = 0
) -> np.ndarray:
    """Set-bit positions across an array of fixed-width words.

    Word ``i`` covers positions ``base + i*word_bits .. base + (i+1)*word_bits - 1``
    with bit 0 the lowest position.
    """
    if words.size == 0:
        return np.empty(0, dtype=np.int64)
    bits = unpack_groups(words, word_bits)
    return bits_to_positions(bits, base)


def group_classify(groups: np.ndarray, group_bits: int) -> np.ndarray:
    """Classify groups: 0 = 0-fill, 1 = 1-fill, 2 = literal.

    A group is a fill when all its *group_bits* bits are identical — the
    shared definition used by WAH, CONCISE, PLWAH, VALWAH, SBH, and BBC.
    """
    full = np.uint64((1 << group_bits) - 1)
    kinds = np.full(groups.shape, 2, dtype=np.int8)
    kinds[groups == 0] = 0
    kinds[groups == full] = 1
    return kinds
