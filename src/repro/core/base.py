"""Abstract base classes every compression codec implements.

The paper frames both bitmap compression and inverted list compression as
solutions to one problem: *store a set of sorted integers in as few bits as
possible, and answer intersection/union as fast as possible*.  This module
defines that contract.

Every codec turns a validated posting array into a
:class:`CompressedIntegerSet` and back, reports its wire size, and answers
``intersect``/``union`` between two of its own compressed sets.  Following
the paper (Section 4.3), ``intersect``/``union`` return an *uncompressed*
integer array so the result can be returned to the user or fed into the
next operator of a query plan.

Beyond that baseline, a codec *declares* which operations it supports
directly on the compressed form via the :class:`Capability` protocol:
``CAPABILITIES`` is a statically-readable class attribute (the
``repro.analysis`` REPRO008 rule cross-checks it against the overridden
methods) and :meth:`IntegerSetCodec.capabilities` is the instance-level
accessor (instances may restrict it — e.g. blocked lists built without
skip pointers).  Codecs declaring ``INTERSECT_COMPRESSED`` /
``UNION_COMPRESSED`` additionally implement
:meth:`IntegerSetCodec.intersect_compressed` /
:meth:`IntegerSetCodec.union_compressed`, which stay *in* the compressed
domain: compressed sets in, compressed set out, so a query plan can chain
operators without ever materialising intermediate posting arrays.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Any, ClassVar, Iterable

import numpy as np

from repro.core.validation import as_posting_array


class Capability(enum.Enum):
    """An operation a codec supports directly on its compressed form.

    Declaring a capability is a *performance contract*, not just an API
    marker: the plan compiler routes queries through the corresponding
    method only when the capability is declared, so a codec that declares
    one must implement it better than the decode-everything fallback.

    Members:
        INTERSECT_COMPRESSED: :meth:`IntegerSetCodec.intersect_compressed`
            ANDs two compressed sets into a new compressed set without
            materialising either operand (Roaring container AND, RLE
            run-word AND).
        UNION_COMPRESSED: :meth:`IntegerSetCodec.union_compressed`, the
            OR counterpart.
        INTERSECT_WITH_ARRAY: :meth:`IntegerSetCodec.intersect_with_array`
            probes the compressed set with a sorted candidate array
            sub-linearly (skip pointers, container lookup) instead of the
            default full decompression.
        RANK_SELECT_SKIP: :meth:`IntegerSetCodec.rank` and
            :meth:`IntegerSetCodec.select` run off per-block metadata
            without a full decode.
    """

    INTERSECT_COMPRESSED = "intersect_compressed"
    UNION_COMPRESSED = "union_compressed"
    INTERSECT_WITH_ARRAY = "intersect_with_array"
    RANK_SELECT_SKIP = "rank_select_skip"


@dataclass(frozen=True)
class CompressedIntegerSet:
    """A compressed representation of a sorted integer set.

    Attributes:
        codec_name: registry name of the codec that produced the payload.
        payload: codec-specific compressed data (opaque to callers).
        n: number of integers in the original set.
        universe: exclusive upper bound on the values (the bitmap length /
            the paper's "domain size").
        size_bytes: size of the compressed payload on the wire, excluding
            Python object overhead.  This is the paper's "space overhead"
            metric.
    """

    codec_name: str
    payload: Any
    n: int
    universe: int
    size_bytes: int

    def __len__(self) -> int:
        return self.n


class IntegerSetCodec(abc.ABC):
    """Base class for every bitmap and inverted-list compression codec.

    Subclasses set the class attributes and implement :meth:`compress`,
    :meth:`decompress`, :meth:`intersect`, and :meth:`union`.

    Class attributes:
        name: unique registry name, matching the paper's legend labels
            (e.g. ``"WAH"``, ``"SIMDBP128*"``).
        family: ``"bitmap"`` or ``"invlist"`` — which side of the study
            the codec belongs to.
        year: publication year, used only for the Figure-1 style history
            metadata.
    """

    name: ClassVar[str]
    family: ClassVar[str]
    year: ClassVar[int]

    #: Declared compressed-domain capabilities.  Kept as a plain class
    #: attribute (not a property) so the static analyzer can read the
    #: declaration without importing the codec; REPRO008 enforces that a
    #: declared capability has a matching override and vice versa.
    CAPABILITIES: ClassVar[frozenset[Capability]] = frozenset()

    # ------------------------------------------------------------------
    # Core contract
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def compress(
        self, values: Iterable[int] | np.ndarray, universe: int | None = None
    ) -> CompressedIntegerSet:
        """Compress a strictly increasing sequence of non-negative ints.

        Args:
            values: the posting list.
            universe: exclusive upper bound on values.  Bitmap codecs use
                it as the uncompressed bitmap length; when omitted it
                defaults to ``max(values) + 1`` (or 1 for an empty list).
        """

    @abc.abstractmethod
    def decompress(self, cs: CompressedIntegerSet) -> np.ndarray:
        """Recover the original posting list as an ``int64`` array."""

    @abc.abstractmethod
    def intersect(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> np.ndarray:
        """AND two compressed sets, returning an uncompressed array."""

    @abc.abstractmethod
    def union(self, a: CompressedIntegerSet, b: CompressedIntegerSet) -> np.ndarray:
        """OR two compressed sets, returning an uncompressed array."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def params(self) -> dict[str, int | str]:
        """This instance's tunable configuration (block size, thresholds).

        Codecs with constructor knobs override this; the store manifest
        records it so a saved index can be verified against — not just
        assumed to match — the configuration that will decode it.
        Parameter-free codecs return ``{}``.
        """
        return {}

    def size_in_bytes(self, cs: CompressedIntegerSet) -> int:
        """Wire size of a compressed set (the space-overhead metric)."""
        return cs.size_bytes

    # ------------------------------------------------------------------
    # Capability protocol
    # ------------------------------------------------------------------
    def capabilities(self) -> frozenset[Capability]:
        """The compressed-domain operations *this instance* supports.

        Defaults to the class-level declaration; codecs whose support
        depends on construction parameters (e.g. blocked lists without
        skip pointers) override this to return a restricted set.  The
        query planner consults this — never ``hasattr`` probing — when
        deciding whether an operator can stay in the compressed domain.
        """
        return self.CAPABILITIES

    def intersect_compressed(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> CompressedIntegerSet:
        """AND two compressed sets into a *compressed* result.

        Only meaningful for codecs declaring
        :attr:`Capability.INTERSECT_COMPRESSED`; the base implementation
        refuses so a silent fallback-to-decode can never masquerade as a
        compressed-domain kernel.
        """
        raise NotImplementedError(
            f"{self.name} does not declare Capability.INTERSECT_COMPRESSED"
        )

    def union_compressed(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> CompressedIntegerSet:
        """OR two compressed sets into a *compressed* result (see
        :meth:`intersect_compressed`)."""
        raise NotImplementedError(
            f"{self.name} does not declare Capability.UNION_COMPRESSED"
        )

    def intersect_many(self, sets: list[CompressedIntegerSet]) -> np.ndarray:
        """Intersect k compressed sets, shortest-first (SvS ordering).

        Per the paper's Appendix B.1: the first two sets are intersected on
        their compressed forms; the running (uncompressed) result is then
        intersected against each remaining compressed set via
        :meth:`intersect_with_array`.  Codecs declaring
        :attr:`Capability.INTERSECT_COMPRESSED` instead chain the whole
        fold in the compressed domain and materialise only the final
        (smallest) result.
        """
        if not sets:
            return np.empty(0, dtype=np.int64)
        ordered = sorted(sets, key=len)
        if len(ordered) == 1:
            return self.decompress(ordered[0])
        if Capability.INTERSECT_COMPRESSED in self.capabilities():
            acc = ordered[0]
            for cs in ordered[1:]:
                if acc.n == 0:
                    break
                acc = self.intersect_compressed(acc, cs)
            return self.decompress(acc)
        result = self.intersect(ordered[0], ordered[1])
        for cs in ordered[2:]:
            if result.size == 0:
                break
            result = self.intersect_with_array(cs, result)
        return result

    def intersect_with_array(
        self, cs: CompressedIntegerSet, values: np.ndarray
    ) -> np.ndarray:
        """Intersect a compressed set with an uncompressed sorted array.

        The default decompresses and merges; codecs with random access
        (Roaring, PEF, blocked lists with skip pointers) override this to
        probe without full decompression.
        """
        if values.size == 0:
            return values
        mine = self.decompress(cs)
        return intersect_sorted_arrays(mine, values)

    def rank(self, cs: CompressedIntegerSet, value: int) -> int:
        """Number of stored elements ≤ *value*.

        Default implementation decompresses; random-access codecs
        (blocked lists, Roaring) override with sub-linear versions.
        """
        arr = self.decompress(cs)
        return int(np.searchsorted(arr, value, side="right"))

    def select(self, cs: CompressedIntegerSet, index: int) -> int:
        """The *index*-th smallest stored element (0-based).

        Raises IndexError outside ``[0, n)``.
        """
        if index < 0 or index >= cs.n:
            raise IndexError(f"select index {index} out of range [0, {cs.n})")
        return int(self.decompress(cs)[index])

    def difference(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> np.ndarray:
        """ANDNOT: elements of *a* absent from *b* (uncompressed result).

        Not one of the paper's measured operations, but standard in
        production bitmap libraries; bitmap codecs override this to run
        on the compressed form.
        """
        return difference_sorted_arrays(self.decompress(a), self.decompress(b))

    def symmetric_difference(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> np.ndarray:
        """XOR: elements in exactly one of the two sets."""
        return xor_sorted_arrays(self.decompress(a), self.decompress(b))

    def union_many(self, sets: list[CompressedIntegerSet]) -> np.ndarray:
        """Union k compressed sets via pairwise folding.

        Codecs declaring :attr:`Capability.UNION_COMPRESSED` fold in the
        compressed domain and materialise once at the end.
        """
        if not sets:
            return np.empty(0, dtype=np.int64)
        if len(sets) == 1:
            return self.decompress(sets[0])
        if Capability.UNION_COMPRESSED in self.capabilities():
            acc = sets[0]
            for cs in sets[1:]:
                acc = self.union_compressed(acc, cs)
            return self.decompress(acc)
        result = self.union(sets[0], sets[1])
        for cs in sets[2:]:
            result = union_sorted_arrays(result, self.decompress(cs))
        return result

    # Convenience wrappers -------------------------------------------------
    def roundtrip(self, values: Iterable[int] | np.ndarray) -> np.ndarray:
        """Compress then decompress, for testing and sanity checks."""
        return self.decompress(self.compress(values))

    @staticmethod
    def _prepare(
        values: Iterable[int] | np.ndarray, universe: int | None
    ) -> tuple[np.ndarray, int]:
        """Validate input and resolve the universe bound."""
        arr = as_posting_array(values)
        if universe is None:
            universe = int(arr[-1]) + 1 if arr.size else 1
        elif arr.size and universe <= int(arr[-1]):
            raise ValueError(
                f"universe {universe} too small for max value {int(arr[-1])}"
            )
        return arr, int(universe)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} family={self.family!r}>"


def intersect_sorted_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersection of two sorted-unique int arrays (vectorised merge).

    A stable sort of the concatenation is a linear two-run merge
    (timsort detects the pre-sorted runs), after which duplicates mark
    the common elements — much cheaper than hash-based set ops.
    """
    if a.size == 0 or b.size == 0:
        return np.empty(0, dtype=np.int64)
    aux = np.concatenate((a, b))
    aux.sort(kind="stable")
    return aux[:-1][aux[1:] == aux[:-1]].astype(np.int64, copy=False)


def union_sorted_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Union of two sorted-unique int arrays (vectorised merge)."""
    if a.size == 0:
        return b.astype(np.int64, copy=False)
    if b.size == 0:
        return a.astype(np.int64, copy=False)
    out = np.concatenate((a, b))
    out.sort(kind="stable")
    keep = np.empty(out.size, dtype=bool)
    keep[0] = True
    keep[1:] = out[1:] != out[:-1]
    return out[keep].astype(np.int64, copy=False)


def difference_sorted_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """a \\ b for sorted-unique int arrays (binary-search membership)."""
    if a.size == 0 or b.size == 0:
        return a.astype(np.int64, copy=False)
    idx = np.searchsorted(b, a)
    idx[idx == b.size] = b.size - 1
    return a[b[idx] != a].astype(np.int64, copy=False)


def xor_sorted_arrays(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Symmetric difference for sorted-unique int arrays.

    In the sorted concatenation, shared elements appear exactly twice and
    adjacent; singletons are the answer.
    """
    if a.size == 0:
        return b.astype(np.int64, copy=False)
    if b.size == 0:
        return a.astype(np.int64, copy=False)
    aux = np.concatenate((a, b))
    aux.sort(kind="stable")
    keep = np.ones(aux.size, dtype=bool)
    dup = aux[1:] == aux[:-1]
    keep[1:] &= ~dup
    keep[:-1] &= ~dup
    return aux[keep].astype(np.int64, copy=False)
