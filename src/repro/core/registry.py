"""Codec registry.

Codecs self-register at import time via :func:`register_codec`.  The
benchmark harness and the figures iterate over the registry instead of
hard-coding codec lists, so adding a new codec automatically enrols it in
every experiment — the same property the paper's C++ harness had.

The registry also carries the Figure-1 history metadata (publication year
and family) so ``repro.bench.report.history_table()`` can regenerate the
timeline.
"""

from __future__ import annotations

import functools
import os
from typing import Iterator, Type

from repro.core.base import CompressedIntegerSet, IntegerSetCodec
from repro.core.errors import UnknownCodecError

_REGISTRY: dict[str, IntegerSetCodec] = {}


def register_codec(cls: Type[IntegerSetCodec]) -> Type[IntegerSetCodec]:
    """Class decorator registering a codec singleton under ``cls.name``.

    Names must be unique *case-insensitively*: ``get_codec`` lookups are
    exact, so a ``"wah"`` alongside ``"WAH"`` could only ever be a
    shadowing mistake.  When the ``REPRO_DEBUG`` environment variable is
    set (non-empty), every registered codec's ``compress`` is wrapped
    with a round-trip assertion that the ``CompressedIntegerSet`` it
    returns declares an ``n``/``universe`` matching what ``decompress``
    actually recovers.
    """
    name = getattr(cls, "name", None)
    if not name:
        raise ValueError(f"{cls.__name__} must define a non-empty `name`")
    folded = name.casefold()
    for existing in _REGISTRY:
        if existing.casefold() == folded:
            raise ValueError(
                f"duplicate codec name {name!r} (collides with "
                f"{existing!r}; names are unique case-insensitively)"
            )
    if cls.family not in ("bitmap", "invlist"):
        raise ValueError(f"{cls.__name__}.family must be 'bitmap' or 'invlist'")
    codec = cls()
    if os.environ.get("REPRO_DEBUG"):
        _install_roundtrip_validation(codec)
    _REGISTRY[name] = codec
    return cls


def _install_roundtrip_validation(codec: IntegerSetCodec) -> None:
    """Wrap ``codec.compress`` with the REPRO_DEBUG metadata assertion."""
    inner = codec.compress

    @functools.wraps(inner)
    def compress(values, universe=None) -> CompressedIntegerSet:  # type: ignore[no-untyped-def]
        cs = inner(values, universe)
        arr = codec.decompress(cs)
        if int(arr.size) != cs.n:
            raise AssertionError(
                f"{codec.name}: compress() declared n={cs.n} but "
                f"decompress() recovered {int(arr.size)} values"
            )
        if arr.size and int(arr[-1]) >= cs.universe:
            raise AssertionError(
                f"{codec.name}: compress() declared universe="
                f"{cs.universe} but decompress() recovered max value "
                f"{int(arr[-1])}"
            )
        return cs

    codec.compress = compress  # type: ignore[method-assign]


def get_codec(name: str) -> IntegerSetCodec:
    """Look up a codec instance by its registry name (paper legend label)."""
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownCodecError(f"unknown codec {name!r}; known: {known}") from None


def all_codec_names() -> list[str]:
    """Every registered codec name, bitmaps first then inverted lists,
    each group in paper-legend order (roughly chronological)."""
    _ensure_loaded()
    return bitmap_codec_names() + invlist_codec_names()


def bitmap_codec_names() -> list[str]:
    """Registered bitmap codec names in paper-legend order."""
    _ensure_loaded()
    return _family_names("bitmap")


def invlist_codec_names() -> list[str]:
    """Registered inverted-list codec names in paper-legend order."""
    _ensure_loaded()
    return _family_names("invlist")


def iter_codecs() -> Iterator[IntegerSetCodec]:
    """Iterate codec instances in :func:`all_codec_names` order."""
    for name in all_codec_names():
        yield _REGISTRY[name]


def history() -> list[tuple[int, str, str]]:
    """(year, family, name) triples — the Figure 1 timeline data."""
    _ensure_loaded()
    return sorted((c.year, c.family, c.name) for c in _REGISTRY.values())


# Legend order taken from the paper's figures (Figure 3 legend).
_BITMAP_ORDER = [
    "Bitset", "BBC", "WAH", "EWAH", "PLWAH", "CONCISE", "VALWAH", "SBH",
    "Roaring",
]
_INVLIST_ORDER = [
    "List", "VB", "Simple9", "PforDelta", "NewPforDelta", "OptPforDelta",
    "Simple16", "GroupVB", "Simple8b", "PEF", "SIMDPforDelta", "SIMDBP128",
    "PforDelta*", "SIMDPforDelta*", "SIMDBP128*",
]


def _family_names(family: str) -> list[str]:
    order = _BITMAP_ORDER if family == "bitmap" else _INVLIST_ORDER
    present = [n for n in order if n in _REGISTRY]
    extras = sorted(
        n for n, c in _REGISTRY.items() if c.family == family and n not in order
    )
    return present + extras


_LOADED = False


def _ensure_loaded() -> None:
    """Import the codec packages so their @register_codec decorators run."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    # Imported lazily to avoid a circular import at package init time.
    import repro.bitmaps  # noqa: F401
    import repro.invlists  # noqa: F401
