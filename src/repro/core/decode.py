"""Cache-aware decode entry point.

Every consumer that materialises a compressed set — the query engine,
the expression evaluator, the bench harness's served mode — funnels
through :func:`decode` instead of calling ``codec.decompress`` directly.
That one chokepoint is where the serving layer attaches its decode
cache (Roaring's design keeps containers decodable in isolation for the
same reason: reuse of decoded state is a first-class concern) and its
observability (per-codec decode counts and time).

The function itself stays dependency-free: caches and observers are
structural protocols, so :mod:`repro.core` does not import the store
package that implements them.
"""

from __future__ import annotations

import time
from typing import Hashable, Optional, Protocol, runtime_checkable

import numpy as np

from repro.core.base import CompressedIntegerSet, IntegerSetCodec
from repro.core.registry import get_codec

#: Cache keys are (shard, term, codec_name) triples in the store, but any
#: hashable value works — the decode layer never inspects them.
DecodeKey = Hashable


@runtime_checkable
class ArrayCache(Protocol):
    """Minimal cache surface :func:`decode` consults.

    ``get`` returns the cached decoded array or ``None``; ``put`` stores
    one.  :class:`repro.store.cache.DecodeCache` is the bounded LRU
    implementation; any mapping-like object with these two methods works.
    """

    def get(self, key: DecodeKey) -> Optional[np.ndarray]: ...

    def put(self, key: DecodeKey, values: np.ndarray) -> None: ...


@runtime_checkable
class DecodeObserver(Protocol):
    """Callback surface for decode accounting (implemented by
    :class:`repro.store.metrics.StoreMetrics`)."""

    def record_decode(self, codec_name: str, n: int, seconds: float) -> None: ...


class FlightTicket(Protocol):
    """One caller's handle on a coalesced decode (see
    :class:`repro.store.cache.DecodeFlight`)."""

    @property
    def leader(self) -> bool: ...

    def wait(self) -> Optional[np.ndarray]: ...

    def complete(self, values: np.ndarray) -> None: ...

    def abort(self) -> None: ...


@runtime_checkable
class CoalescingCache(Protocol):
    """Cache that additionally supports single-flight decode coalescing.

    ``begin_flight`` elects exactly one leader per key; concurrent
    callers for the same key block on the leader's ticket and share its
    result instead of stampeding the decoder.
    """

    def get(self, key: DecodeKey) -> Optional[np.ndarray]: ...

    def put(self, key: DecodeKey, values: np.ndarray) -> None: ...

    def begin_flight(self, key: DecodeKey) -> FlightTicket: ...


def decode(
    cs: CompressedIntegerSet,
    *,
    codec: IntegerSetCodec | None = None,
    cache: ArrayCache | None = None,
    key: DecodeKey | None = None,
    observer: DecodeObserver | None = None,
) -> np.ndarray:
    """Decompress *cs*, consulting *cache* under *key* when both are given.

    Args:
        cs: the compressed set.
        codec: explicit codec instance; defaults to a registry lookup on
            ``cs.codec_name``.  Unregistered wrapper codecs (e.g.
            :class:`repro.hybrid.AdaptiveCodec`) must be passed explicitly.
        cache: optional :class:`ArrayCache`; consulted and filled only
            when *key* is also provided.
        key: cache key identifying this set (the store uses
            ``(shard, term, codec_name)``).
        observer: optional accounting hook; sees only *actual* decodes,
            never cache hits.

    Returns:
        The decoded posting array.  Cached arrays are returned read-only
        (``writeable=False``) so one query cannot corrupt another's hit.

    When *cache* implements :class:`CoalescingCache`, a miss enters the
    single-flight path: one leader decodes while concurrent callers for
    the same key wait on its ticket and share the result — each compressed
    set decodes at most once per stampede.  A follower whose leader aborts
    (or whose wait times out) falls back to decoding independently.
    """
    if cache is not None and key is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
        if isinstance(cache, CoalescingCache):
            flight = cache.begin_flight(key)
            if flight.leader:
                try:
                    values = _decompress(cs, codec, observer)
                except BaseException:
                    flight.abort()
                    raise
                flight.complete(values)
                return values
            shared = flight.wait()
            if shared is not None:
                return shared
            return _decompress(cs, codec, observer)
    values = _decompress(cs, codec, observer)
    if cache is not None and key is not None:
        values.flags.writeable = False
        cache.put(key, values)
    return values


def _decompress(
    cs: CompressedIntegerSet,
    codec: IntegerSetCodec | None,
    observer: DecodeObserver | None,
) -> np.ndarray:
    """The actual decode, with observer accounting.

    Sets served off a memory-mapped segment carry a ``source`` handle
    (see :mod:`repro.store.mapped`): the decode runs under its ``pin()``
    so compaction cannot dispose the mapping mid-decode, and a result
    that is itself a view over the map (e.g. the uncompressed ``List``
    codec) is defensively copied — callers may hold the array long after
    the segment is retired.
    """
    if codec is None:
        codec = get_codec(cs.codec_name)
    source = getattr(cs, "source", None)
    t0 = time.perf_counter()
    if source is not None:
        with source.pin():
            values = codec.decompress(cs)
            if not values.flags.owndata and values.base is not None:
                values = np.array(values)
    else:
        values = codec.decompress(cs)
    elapsed = time.perf_counter() - t0
    if observer is not None:
        observer.record_decode(cs.codec_name, int(values.size), elapsed)
    return values
