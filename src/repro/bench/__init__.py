"""Benchmark harness regenerating every table and figure of the paper.

See :mod:`repro.bench.experiments` for the experiment index and
``python -m repro.bench --help`` for the CLI.
"""

from repro.bench.harness import (
    MetricRow,
    bench_decompression,
    bench_pair,
    bench_query,
    bench_query_union,
)
from repro.bench.timing import measure, measure_ms

__all__ = [
    "MetricRow",
    "bench_decompression",
    "bench_pair",
    "bench_query",
    "bench_query_union",
    "measure",
    "measure_ms",
]
