"""Command-line runner: ``python -m repro.bench <experiment-id> [...]``.

Examples::

    python -m repro.bench fig3            # decompression sweep
    python -m repro.bench tab1 tab2       # intersection + union tables
    python -m repro.bench all             # everything (slow)
    python -m repro.bench fig3 --quick    # reduced sizes for a fast look
    python -m repro.bench history         # the Figure-1 timeline
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.experiments import EXPERIMENTS
from repro.bench.report import format_table, history_table, scatter_plot, to_csv

_METRIC_TITLES = {
    "decompress_ms": "decompression time (ms)",
    "intersect_ms": "intersection / query time (ms)",
    "union_ms": "union time (ms)",
    "space_bytes": "space",
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(EXPERIMENTS)}), 'all', or 'history'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced list sizes / fewer repeats for a fast smoke run",
    )
    parser.add_argument(
        "--csv", action="store_true", help="dump raw CSV instead of tables"
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="dump one JSON object {experiment: [rows...]} instead of "
        "tables — for scripted consumers (the CI smoke job parses this)",
    )
    parser.add_argument(
        "--scatter",
        action="store_true",
        help="render time-vs-space ASCII scatters (the paper's figure "
        "panels) instead of tables",
    )
    parser.add_argument(
        "--svg",
        metavar="DIR",
        help="additionally write paper-style SVG figures into DIR "
        "(one scatter per workload, plus a sweep line chart)",
    )
    parser.add_argument(
        "--sizes",
        metavar="N[,N...]",
        help="override list sizes for the synthetic sweeps "
        "(fig3/tab1/tab2), e.g. --sizes 1000,100000",
    )
    parser.add_argument(
        "--domain",
        type=int,
        metavar="D",
        help="override the synthetic domain size (default 2^21 - 1)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        metavar="R",
        help="measurement repetitions per cell (default 3)",
    )
    args = parser.parse_args(argv)

    wanted = list(args.experiments)
    if "all" in wanted:
        wanted = list(EXPERIMENTS)
    json_out: dict[str, list] = {}
    for exp_id in wanted:
        if exp_id == "history":
            print(history_table())
            continue
        if exp_id not in EXPERIMENTS:
            parser.error(f"unknown experiment {exp_id!r}")
        fn, metrics = EXPERIMENTS[exp_id]
        kwargs = {}
        if args.quick:
            kwargs = _quick_kwargs(exp_id)
        kwargs.update(_scale_kwargs(exp_id, args))
        if not args.json:
            print(f"=== {exp_id}: {fn.__doc__.strip().splitlines()[0]} ===")
        rows = fn(**kwargs)
        if args.svg:
            _write_svgs(args.svg, exp_id, rows, metrics)
        if args.json:
            json_out[exp_id] = [r.as_dict() for r in rows]
            continue
        if args.csv:
            print(to_csv(rows))
            continue
        if args.scatter:
            time_metric = next(
                (m for m in metrics if m.endswith("_ms")), "intersect_ms"
            )
            for workload in dict.fromkeys(r.workload for r in rows):
                print(scatter_plot(rows, workload, y=time_metric))
            continue
        for metric in metrics:
            print(format_table(rows, metric, title=f"[{_METRIC_TITLES[metric]}]"))
    if args.json:
        import json

        print(json.dumps(json_out, indent=1))
    return 0


def _write_svgs(directory: str, exp_id: str, rows, metrics) -> None:
    """One scatter SVG per workload (when space is measured) plus a
    sweep line chart for the primary time metric."""
    import os

    from repro.bench.svgplot import scatter_svg, series_svg

    os.makedirs(directory, exist_ok=True)
    time_metric = next((m for m in metrics if m.endswith("_ms")), None)
    if time_metric and "space_bytes" in metrics:
        for workload in dict.fromkeys(r.workload for r in rows):
            safe = workload.replace("/", "_").replace("=", "")
            path = os.path.join(directory, f"{exp_id}_{safe}.svg")
            with open(path, "w") as fh:
                fh.write(
                    scatter_svg(
                        rows, workload, y=time_metric,
                        title=f"{exp_id} {workload}",
                    )
                )
            print(f"wrote {path}")
    if time_metric:
        path = os.path.join(directory, f"{exp_id}_series.svg")
        with open(path, "w") as fh:
            fh.write(series_svg(rows, time_metric, title=exp_id))
        print(f"wrote {path}")


def _scale_kwargs(exp_id: str, args) -> dict:
    """Apply --sizes/--domain/--repeat where the experiment accepts them."""
    out: dict = {}
    if args.repeat is not None:
        out["repeat"] = args.repeat
    if args.sizes and exp_id in ("fig3", "tab1", "tab2"):
        try:
            out["sizes"] = tuple(int(s) for s in args.sizes.split(","))
        except ValueError:
            raise SystemExit(
                f"error: --sizes expects comma-separated integers, "
                f"got {args.sizes!r}"
            )
    if args.domain and exp_id in ("fig3", "tab1", "tab2", "tab3", "fig7"):
        out["domain"] = args.domain
    return out


def _quick_kwargs(exp_id: str) -> dict:
    """Reduced-scale parameters per experiment for --quick runs."""
    if exp_id in ("fig3", "tab1", "tab2"):
        return {"sizes": (1_000, 10_000), "repeat": 1}
    if exp_id == "tab3":
        return {"long_size": 10_000, "repeat": 1}
    if exp_id in ("fig4", "fig5"):
        return {"scale_factors": (1,), "repeat": 1}
    if exp_id == "fig6":
        return {"n_docs": 50_000, "n_queries": 10, "repeat": 1}
    if exp_id == "fig7":
        return {"long_size": 5_000, "repeat": 1}
    if exp_id == "served":
        return {"n_terms": 8, "list_size": 800, "n_queries": 16, "repeat": 1}
    if exp_id == "closed_loop":
        return {
            "n_terms": 8,
            "list_size": 500,
            "clients": 4,
            "requests_per_client": 6,
            "queue_depth": 8,
            "repeat": 1,
        }
    if exp_id == "churn":
        return {
            "n_terms": 8,
            "list_size": 400,
            "clients": 3,
            "requests_per_client": 8,
            "ingest_batches": 8,
            "ops_per_batch": 6,
            "repeat": 1,
            # CI smoke compares the two segment formats side by side
            "backings": ("in-heap", "mapped"),
        }
    if exp_id == "cluster":
        return {
            "n_terms": 8,
            "list_size": 400,
            "clients": 4,
            "requests_per_client": 8,
            "slow_shard_ms": 150.0,
            "hedge_max_ms": 40.0,
            "repeat": 1,
        }
    return {"repeat": 1}


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
