"""Dependency-free SVG rendering of experiment results.

The paper presents its per-query results as time-vs-space scatter plots
(Figures 4–12) and its sweeps as line/point panels (Figure 3).  This
module renders both styles straight from :class:`MetricRow` lists —
plain SVG strings, no plotting library required — so
``python -m repro.bench fig4 --svg results/`` leaves behind
paper-style figures.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.bench.harness import MetricRow
from repro.bench.report import format_bytes, format_ms
from repro.core.registry import all_codec_names

_W, _H = 640, 420
_MARGIN_L, _MARGIN_R, _MARGIN_T, _MARGIN_B = 70, 180, 30, 50
_PLOT_W = _W - _MARGIN_L - _MARGIN_R
_PLOT_H = _H - _MARGIN_T - _MARGIN_B

#: A colour per codec family plus a rotating hue within the family.
_BITMAP_COLOURS = [
    "#b2182b", "#d6604d", "#f4a582", "#c51b7d", "#de77ae",
    "#8c510a", "#bf812d", "#dfc27d", "#e08214",
]
_INVLIST_COLOURS = [
    "#2166ac", "#4393c3", "#92c5de", "#01665e", "#35978f",
    "#80cdc1", "#542788", "#8073ac", "#b2abd2", "#1b7837",
    "#5aae61", "#a6dba0", "#4d4d4d", "#878787", "#bababa",
]


def _colour_for(codec: str, family: str) -> str:
    names = all_codec_names()
    try:
        idx = names.index(codec)
    except ValueError:
        idx = 0
    if family == "bitmap":
        return _BITMAP_COLOURS[idx % len(_BITMAP_COLOURS)]
    return _INVLIST_COLOURS[idx % len(_INVLIST_COLOURS)]


def _log_ticks(lo: float, hi: float) -> list[float]:
    """Decade tick positions covering [lo, hi]."""
    first = math.floor(math.log10(lo))
    last = math.ceil(math.log10(hi))
    return [10.0**e for e in range(first, last + 1)]


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def scatter_svg(
    rows: Sequence[MetricRow],
    workload: str,
    x: str = "space_bytes",
    y: str = "intersect_ms",
    title: str | None = None,
) -> str:
    """A log-log time-vs-space scatter for one workload (one paper panel).

    Returns the SVG document as a string; empty-data inputs yield a
    minimal SVG with a notice so the caller can always write a file.
    """
    points = []
    for row in rows:
        if row.workload != workload:
            continue
        xv, yv = getattr(row, x), getattr(row, y)
        if xv != xv or yv != yv or xv <= 0 or yv <= 0:
            continue
        points.append((row.codec, row.family, float(xv), float(yv)))

    title = title or workload
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" '
        f'height="{_H}" viewBox="0 0 {_W} {_H}">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
        f'<text x="{_MARGIN_L}" y="20" font-family="sans-serif" '
        f'font-size="14" font-weight="bold">{_escape(title)}</text>',
    ]
    if not points:
        parts.append(
            f'<text x="{_W // 2}" y="{_H // 2}" text-anchor="middle" '
            f'font-family="sans-serif" font-size="13">no data</text></svg>'
        )
        return "".join(parts)

    x_lo = min(p[2] for p in points) / 1.3
    x_hi = max(p[2] for p in points) * 1.3
    y_lo = min(p[3] for p in points) / 1.3
    y_hi = max(p[3] for p in points) * 1.3

    def sx(v: float) -> float:
        return _MARGIN_L + (math.log10(v) - math.log10(x_lo)) / (
            math.log10(x_hi) - math.log10(x_lo)
        ) * _PLOT_W

    def sy(v: float) -> float:
        return (
            _MARGIN_T
            + _PLOT_H
            - (math.log10(v) - math.log10(y_lo))
            / (math.log10(y_hi) - math.log10(y_lo))
            * _PLOT_H
        )

    # Axes + decade gridlines.
    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{_PLOT_W}" '
        f'height="{_PLOT_H}" fill="none" stroke="#333"/>'
    )
    for tick in _log_ticks(x_lo, x_hi):
        if not x_lo <= tick <= x_hi:
            continue
        px = sx(tick)
        parts.append(
            f'<line x1="{px:.1f}" y1="{_MARGIN_T}" x2="{px:.1f}" '
            f'y2="{_MARGIN_T + _PLOT_H}" stroke="#ddd"/>'
            f'<text x="{px:.1f}" y="{_MARGIN_T + _PLOT_H + 16}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="10">'
            f"{format_bytes(tick)}</text>"
        )
    for tick in _log_ticks(y_lo, y_hi):
        if not y_lo <= tick <= y_hi:
            continue
        py = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{py:.1f}" '
            f'x2="{_MARGIN_L + _PLOT_W}" y2="{py:.1f}" stroke="#ddd"/>'
            f'<text x="{_MARGIN_L - 6}" y="{py + 3:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{format_ms(tick)}</text>'
        )
    parts.append(
        f'<text x="{_MARGIN_L + _PLOT_W / 2}" y="{_H - 8}" '
        f'text-anchor="middle" font-family="sans-serif" font-size="11">'
        f"space (log)</text>"
        f'<text x="16" y="{_MARGIN_T + _PLOT_H / 2}" text-anchor="middle" '
        f'font-family="sans-serif" font-size="11" '
        f'transform="rotate(-90 16 {_MARGIN_T + _PLOT_H / 2})">'
        f"time, ms (log)</text>"
    )

    # Points: circles for bitmaps, squares for inverted lists.
    legend_y = _MARGIN_T
    for codec, family, xv, yv in points:
        colour = _colour_for(codec, family)
        px, py = sx(xv), sy(yv)
        if family == "bitmap":
            parts.append(
                f'<circle cx="{px:.1f}" cy="{py:.1f}" r="4.5" '
                f'fill="{colour}" stroke="#222" stroke-width="0.5">'
                f"<title>{_escape(codec)}: {format_ms(yv)} ms, "
                f"{format_bytes(xv)}</title></circle>"
            )
        else:
            parts.append(
                f'<rect x="{px - 4:.1f}" y="{py - 4:.1f}" width="8" '
                f'height="8" fill="{colour}" stroke="#222" '
                f'stroke-width="0.5"><title>{_escape(codec)}: '
                f"{format_ms(yv)} ms, {format_bytes(xv)}</title></rect>"
            )
        lx = _W - _MARGIN_R + 12
        marker = (
            f'<circle cx="{lx}" cy="{legend_y + 4}" r="4" fill="{colour}"/>'
            if family == "bitmap"
            else f'<rect x="{lx - 4}" y="{legend_y}" width="8" height="8" '
            f'fill="{colour}"/>'
        )
        parts.append(
            marker
            + f'<text x="{lx + 10}" y="{legend_y + 8}" '
            f'font-family="sans-serif" font-size="10">{_escape(codec)}</text>'
        )
        legend_y += 15
    parts.append("</svg>")
    return "".join(parts)


def series_svg(
    rows: Sequence[MetricRow],
    metric: str = "decompress_ms",
    title: str = "",
) -> str:
    """One line per codec across the workloads, log-scaled y — the shape
    of the paper's Figure-3 sweep panels."""
    workloads = list(dict.fromkeys(r.workload for r in rows))
    by_codec: dict[tuple[str, str], dict[str, float]] = {}
    for row in rows:
        v = getattr(row, metric)
        if v == v and v > 0:
            by_codec.setdefault((row.codec, row.family), {})[row.workload] = v
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" '
        f'height="{_H}" viewBox="0 0 {_W} {_H}">',
        f'<rect width="{_W}" height="{_H}" fill="white"/>',
        f'<text x="{_MARGIN_L}" y="20" font-family="sans-serif" '
        f'font-size="14" font-weight="bold">{_escape(title or metric)}</text>',
    ]
    if not by_codec or not workloads:
        parts.append("</svg>")
        return "".join(parts)
    values = [v for series in by_codec.values() for v in series.values()]
    y_lo, y_hi = min(values) / 1.3, max(values) * 1.3

    def sx(i: int) -> float:
        if len(workloads) == 1:
            return _MARGIN_L + _PLOT_W / 2
        return _MARGIN_L + i / (len(workloads) - 1) * _PLOT_W

    def sy(v: float) -> float:
        return (
            _MARGIN_T
            + _PLOT_H
            - (math.log10(v) - math.log10(y_lo))
            / (math.log10(y_hi) - math.log10(y_lo))
            * _PLOT_H
        )

    parts.append(
        f'<rect x="{_MARGIN_L}" y="{_MARGIN_T}" width="{_PLOT_W}" '
        f'height="{_PLOT_H}" fill="none" stroke="#333"/>'
    )
    for i, w in enumerate(workloads):
        parts.append(
            f'<text x="{sx(i):.1f}" y="{_MARGIN_T + _PLOT_H + 16}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="9">'
            f"{_escape(w)}</text>"
        )
    for tick in _log_ticks(y_lo, y_hi):
        if not y_lo <= tick <= y_hi:
            continue
        py = sy(tick)
        parts.append(
            f'<line x1="{_MARGIN_L}" y1="{py:.1f}" '
            f'x2="{_MARGIN_L + _PLOT_W}" y2="{py:.1f}" stroke="#eee"/>'
            f'<text x="{_MARGIN_L - 6}" y="{py + 3:.1f}" text-anchor="end" '
            f'font-family="sans-serif" font-size="10">{format_ms(tick)}</text>'
        )
    legend_y = _MARGIN_T
    for (codec, family), series in by_codec.items():
        colour = _colour_for(codec, family)
        coords = [
            f"{sx(i):.1f},{sy(series[w]):.1f}"
            for i, w in enumerate(workloads)
            if w in series
        ]
        if len(coords) > 1:
            parts.append(
                f'<polyline points="{" ".join(coords)}" fill="none" '
                f'stroke="{colour}" stroke-width="1.4">'
                f"<title>{_escape(codec)}</title></polyline>"
            )
        lx = _W - _MARGIN_R + 12
        parts.append(
            f'<line x1="{lx - 4}" y1="{legend_y + 4}" x2="{lx + 6}" '
            f'y2="{legend_y + 4}" stroke="{colour}" stroke-width="2"/>'
            f'<text x="{lx + 10}" y="{legend_y + 8}" '
            f'font-family="sans-serif" font-size="10">{_escape(codec)}</text>'
        )
        legend_y += 15
    parts.append("</svg>")
    return "".join(parts)
