"""Wall-clock measurement helpers.

Mirrors the paper's methodology (Section 4.1): operations are timed
in-memory only — compressed inputs are fully materialised before the
clock starts, and loading/compression time is excluded.  Each measurement
is the minimum over ``repeat`` runs to suppress scheduler noise.
"""

from __future__ import annotations

import time
from typing import Any, Callable


def measure(
    fn: Callable[[], Any], repeat: int = 3, warmup: int = 1
) -> float:
    """Best-of-*repeat* wall time of ``fn()`` in seconds."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        if elapsed < best:
            best = elapsed
    return best


def measure_ms(fn: Callable[[], Any], repeat: int = 3, warmup: int = 1) -> float:
    """Best-of-*repeat* wall time in milliseconds (the paper's unit)."""
    return measure(fn, repeat=repeat, warmup=warmup) * 1000.0
