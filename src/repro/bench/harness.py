"""Measurement harness: one workload × many codecs → metric rows.

Each public function measures one of the paper's four metrics (space,
decompression, intersection, union) for a set of codecs over prepared
posting lists, returning tidy rows the report module renders into the
same tables/series the paper prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.base import (
    CompressedIntegerSet,
    intersect_sorted_arrays,
    union_sorted_arrays,
)
from repro.core.registry import all_codec_names, get_codec
from repro.bench.timing import measure_ms
from repro.datasets.common import DatasetQuery
from repro.ops.expressions import And, Leaf, Or, evaluate


@dataclass
class MetricRow:
    """One (codec, workload) measurement."""

    codec: str
    family: str
    workload: str
    space_bytes: int = 0
    decompress_ms: float = float("nan")
    intersect_ms: float = float("nan")
    union_ms: float = float("nan")
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        out = {
            "codec": self.codec,
            "family": self.family,
            "workload": self.workload,
            "space_bytes": self.space_bytes,
            "decompress_ms": self.decompress_ms,
            "intersect_ms": self.intersect_ms,
            "union_ms": self.union_ms,
        }
        out.update(self.extra)
        return out


def resolve_codecs(codecs: Sequence[str] | None) -> list[str]:
    """Default to every registered codec, in paper-legend order."""
    return list(codecs) if codecs is not None else all_codec_names()


def bench_decompression(
    values: np.ndarray,
    universe: int,
    codecs: Sequence[str] | None = None,
    workload: str = "",
    repeat: int = 3,
) -> list[MetricRow]:
    """Space + decompression time of one list under each codec."""
    rows = []
    for name in resolve_codecs(codecs):
        codec = get_codec(name)
        cs = codec.compress(values, universe=universe)
        row = MetricRow(name, codec.family, workload, space_bytes=cs.size_bytes)
        row.decompress_ms = measure_ms(lambda: codec.decompress(cs), repeat=repeat)
        rows.append(row)
    return rows


def bench_pair(
    short: np.ndarray,
    long_: np.ndarray,
    universe: int,
    codecs: Sequence[str] | None = None,
    workload: str = "",
    repeat: int = 3,
    operations: tuple[str, ...] = ("intersect", "union"),
) -> list[MetricRow]:
    """Intersection and/or union time of a list pair under each codec."""
    expected_i = intersect_sorted_arrays(short, long_)
    expected_u = union_sorted_arrays(short, long_)
    rows = []
    for name in resolve_codecs(codecs):
        codec = get_codec(name)
        ca = codec.compress(short, universe=universe)
        cb = codec.compress(long_, universe=universe)
        row = MetricRow(
            name, codec.family, workload, space_bytes=ca.size_bytes + cb.size_bytes
        )
        if "intersect" in operations:
            got = codec.intersect(ca, cb)
            if not np.array_equal(got, expected_i):
                raise AssertionError(f"{name}: wrong intersection result")
            row.intersect_ms = measure_ms(
                lambda: codec.intersect(ca, cb), repeat=repeat
            )
        if "union" in operations:
            got = codec.union(ca, cb)
            if not np.array_equal(got, expected_u):
                raise AssertionError(f"{name}: wrong union result")
            row.union_ms = measure_ms(lambda: codec.union(ca, cb), repeat=repeat)
        rows.append(row)
    return rows


def bench_served(
    terms: dict[str, np.ndarray],
    queries: Sequence,
    universe: int,
    codecs: Sequence[str] | None = None,
    workload: str = "served",
    workers: int = 4,
    cache_entries: int = 1024,
) -> list[MetricRow]:
    """Served-mode measurement: the same query batch, cold then warm.

    For each codec the term lists are loaded into a one-shard
    :class:`repro.store.PostingStore` and the batch is executed twice
    through a :class:`repro.store.QueryEngine` with a fresh decode
    cache: the first pass decodes everything (cold), the second serves
    hot terms from the cache (warm).  ``intersect_ms`` reports the cold
    batch wall time; ``extra`` carries the warm time, the cold/warm
    speedup, and the cache hit rate — the serving-layer numbers the
    paper's one-shot harness cannot produce.

    Results are differentially checked across codecs: every codec must
    return the same result size for every query in the batch.
    """
    from repro.store.cache import DecodeCache
    from repro.store.engine import QueryEngine
    from repro.store.store import PostingStore

    expected_sizes: list[int] | None = None
    rows = []
    for name in resolve_codecs(codecs):
        store = PostingStore()
        shard = store.create_shard("bench", codec=name, universe=universe)
        for term, values in terms.items():
            shard.add(term, values)
        engine = QueryEngine(
            store,
            cache=DecodeCache(max_entries=cache_entries),
            max_workers=workers,
            cache_probes=True,
        )
        t0 = time.perf_counter()
        cold = engine.execute_batch(queries)
        cold_ms = (time.perf_counter() - t0) * 1000.0
        t0 = time.perf_counter()
        warm = engine.execute_batch(queries)
        warm_ms = (time.perf_counter() - t0) * 1000.0
        sizes = [int(r.values.size) for r in cold]
        if any(not r.ok for r in cold) or any(not r.ok for r in warm):
            raise AssertionError(f"{name}: served batch had degraded queries")
        if [int(r.values.size) for r in warm] != sizes:
            raise AssertionError(f"{name}: warm results diverge from cold")
        if expected_sizes is None:
            expected_sizes = sizes
        elif sizes != expected_sizes:
            raise AssertionError(f"{name}: served results diverge across codecs")
        codec = store.shard("bench").codec
        row = MetricRow(
            name,
            codec.family if name != "Adaptive" else "hybrid",
            workload,
            space_bytes=shard.size_bytes,
        )
        row.intersect_ms = cold_ms
        stats = engine.cache.stats()
        row.extra = {
            "warm_ms": warm_ms,
            "speedup": cold_ms / warm_ms if warm_ms else float("inf"),
            "cache_hit_rate": stats.hit_rate,
        }
        rows.append(row)
    return rows


def build_expression(query: DatasetQuery, sets: list[CompressedIntegerSet]):
    """Instantiate a query's tuple-tree expression over compressed sets."""

    def build(node):
        if isinstance(node, int):
            return Leaf(sets[node])
        op, *children = node
        parts = [build(c) for c in children]
        if op == "and":
            return And(*parts)
        if op == "or":
            return Or(*parts)
        raise ValueError(f"unknown expression operator {op!r}")

    return build(query.expression)


def bench_query(
    query: DatasetQuery,
    codecs: Sequence[str] | None = None,
    repeat: int = 3,
) -> list[MetricRow]:
    """Space + evaluation time of one dataset query under each codec.

    Space is the total compressed size of the query's lists; time is the
    full boolean-expression evaluation (the paper's per-query figures).
    """
    expected = None
    rows = []
    for name in resolve_codecs(codecs):
        codec = get_codec(name)
        sets = [codec.compress(lst, universe=query.domain) for lst in query.lists]
        expr = build_expression(query, sets)
        got = evaluate(expr)
        if expected is None:
            expected = got
        elif not np.array_equal(got, expected):
            raise AssertionError(f"{name}: wrong result for {query.name}")
        row = MetricRow(
            name,
            codec.family,
            query.name,
            space_bytes=sum(cs.size_bytes for cs in sets),
        )
        row.intersect_ms = measure_ms(lambda: evaluate(expr), repeat=repeat)
        rows.append(row)
    return rows


def bench_query_union(
    query: DatasetQuery,
    codecs: Sequence[str] | None = None,
    repeat: int = 3,
) -> list[MetricRow]:
    """Union of all of a query's lists under each codec (Figure 6b style)."""
    expected = None
    rows = []
    for name in resolve_codecs(codecs):
        codec = get_codec(name)
        sets = [codec.compress(lst, universe=query.domain) for lst in query.lists]
        got = codec.union_many(sets)
        if expected is None:
            expected = got
        elif not np.array_equal(got, expected):
            raise AssertionError(f"{name}: wrong union for {query.name}")
        row = MetricRow(
            name,
            codec.family,
            query.name,
            space_bytes=sum(cs.size_bytes for cs in sets),
        )
        row.union_ms = measure_ms(lambda: codec.union_many(sets), repeat=repeat)
        rows.append(row)
    return rows
