"""Perf-regression gate: pinned decode + serving workloads, compared
against a committed baseline.

The read-path optimisations (vectorised BBC/Simple/GroupVB kernels,
single-flight decode coalescing, the generational plan-result cache) are
wins only while they stay won.  This module pins a small benchmark
matrix — the 1M-integer decode workloads the paper's Figure 3 family
stresses, plus a served closed-loop that exercises the cache stack — and
compares every run against ``benchmarks/perf_baseline.json``.  The v3
mapped-segment work adds a third workload family: cold-opening a mapped
store must stay flat in term count (zero per-term parsing) and must not
materialise the payload onto the Python heap.  The codec capability
protocol adds a fourth: a selective compressed-domain AND must beat the
decode-then-intersect baseline by ``COMPRESSED_SPEEDUP_BOUND`` on both
the in-heap and mapped backings.  These invariants are asserted
in-process and their committed bounds are gated like every other
metric:

* ratio > ``--warn`` (default 1.5×): printed as a warning, exit 0 — CI
  machines are noisy, a lone soft miss is not a verdict;
* ratio > ``--fail`` (default 3.0×): hard failure, exit 1 — nothing
  legitimate triples a pinned decode workload.

Usage (from the repo root)::

    python -m repro.bench.perf_gate run --output BENCH_PR5.json
    python -m repro.bench.perf_gate check --quick
    python -m repro.bench.perf_gate update --quick

``--quick`` shrinks every workload for CI smoke runs; quick numbers live
in their own baseline section and are never compared against full ones.

Scalar references: the Simple-family and GroupVB workloads re-measure
the generic per-block scalar loop (``BlockedInvListCodec._decode_all``)
in-process, so their ``speedup_vs_scalar`` is apples-to-apples on the
current machine.  BBC's pre-vectorisation decoder no longer exists in
the tree, so its reference times are frozen constants measured at the
commit preceding the vectorisation sweep (see ``_BBC_SCALAR_MS``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import tracemalloc
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.bench.timing import measure
from repro.core.registry import get_codec
from repro.invlists.blocks import BlockedInvListCodec
from repro.store import And, DecodeCache, Or, PostingStore, QueryEngine

SCHEMA_VERSION = 1
SEED = 20170514

#: Default committed baseline location, relative to the repo root (CI and
#: developers both invoke the gate from there).
DEFAULT_BASELINE = Path("benchmarks") / "perf_baseline.json"

#: Soft / hard regression thresholds (current_ms / baseline_ms).
WARN_RATIO = 1.5
FAIL_RATIO = 3.0

#: Frozen scalar references for BBC, in milliseconds: the pre-vectorisation
#: decoder at commit 02358b4 on these exact workloads (seed 20170514,
#: 1M draws).  Full mode only — quick workloads have no frozen reference.
_BBC_SCALAR_MS = {
    "bbc-dense": 1050.1,
    "bbc-sparse": 1618.6,
}
_BBC_SCALAR_SOURCE = "pre-vectorization decoder @ 02358b4"


@dataclass(frozen=True)
class DecodeWorkload:
    """One pinned decompress-throughput measurement."""

    name: str
    codec: str
    draws: int  #: values drawn before np.unique
    universe: int
    quick_draws: int
    #: "block_loop" re-measures the generic scalar block loop in-process;
    #: "frozen" reads :data:`_BBC_SCALAR_MS`; None records no reference.
    scalar: str | None = "block_loop"


DECODE_WORKLOADS: tuple[DecodeWorkload, ...] = (
    DecodeWorkload("bbc-dense", "BBC", 1_000_000, 1 << 25, 100_000, "frozen"),
    DecodeWorkload("bbc-sparse", "BBC", 1_000_000, 1 << 29, 100_000, "frozen"),
    DecodeWorkload("simple9", "Simple9", 1_000_000, 1 << 25, 100_000),
    DecodeWorkload("simple16", "Simple16", 1_000_000, 1 << 25, 100_000),
    DecodeWorkload("simple8b", "Simple8b", 1_000_000, 1 << 25, 100_000),
    DecodeWorkload("groupvb", "GroupVB", 1_000_000, 1 << 25, 100_000),
)

#: Served closed-loop parameters (mirrors benchmarks/bench_store_cache.py).
SERVED_CODEC = "WAH"
SERVED_DOMAIN = 2**21 - 1
SERVED_LIST_SIZE = 120_000
SERVED_QUICK_LIST_SIZE = 20_000
SERVED_ITERATIONS = 15
SERVED_QUICK_ITERATIONS = 5

#: Mapped cold-open workload: a v3 segment must open without per-term
#: parsing, so its open latency is (near-)flat in term count and its
#: Python-heap footprint stays far below an in-heap load of the same
#: store.  ``MAPPED_FLATNESS_BOUND`` is a hard in-process assertion on
#: open(4N)/open(N) — generous because tiny timings are noisy and the
#: metadata CRC is linear (at memory bandwidth) in the ~64B/term tables.
MAPPED_CODEC = "Roaring"
MAPPED_UNIVERSE = 1 << 20
MAPPED_TERMS = 1_200
MAPPED_QUICK_TERMS = 200
MAPPED_LIST_SIZE = 120
MAPPED_FLATNESS_FACTOR = 4
MAPPED_FLATNESS_BOUND = 3.0

#: Compressed-domain execution workload: a selective AND — a ~5k-element
#: filter clustered in a narrow value window (the date-range-filter
#: shape) against a ~1M-element list spanning the whole universe.  The
#: capability protocol lets the planner intersect Roaring container-wise:
#: only the handful of chunk keys the filter touches are examined, and
#: the long list's other ~500 containers are never looked at, let alone
#: decoded.  The decode-then-intersect reference is the same engine with
#: ``compressed_ops=False, cache_probes=True`` — every leaf decoded,
#: arrays merged — timed cold (both cache layers cleared per iteration)
#: on the in-heap table *and* on a mapped v3 segment.
#: ``COMPRESSED_SPEEDUP_BOUND`` is a hard in-process assertion: the
#: compressed kernels must beat the decode baseline by at least this
#: factor on both backings, or the compressed-domain path has quietly
#: started materialising.
COMPRESSED_CODEC = "Roaring"
COMPRESSED_UNIVERSE = 1 << 25
COMPRESSED_LONG_DRAWS = 1_000_000
COMPRESSED_SHORT_DRAWS = 5_000
COMPRESSED_SHORT_WINDOW = 1 << 18  #: filter span: 4 of 512 chunk keys
COMPRESSED_QUICK_LONG_DRAWS = 100_000
COMPRESSED_QUICK_SHORT_DRAWS = 1_000
COMPRESSED_ITERATIONS = 9
COMPRESSED_QUICK_ITERATIONS = 5
COMPRESSED_SPEEDUP_BOUND = 5.0


def _workload_values(wl: DecodeWorkload, quick: bool) -> np.ndarray:
    draws = wl.quick_draws if quick else wl.draws
    rng = np.random.default_rng(SEED)
    return np.unique(rng.integers(0, wl.universe, size=draws))


def _scalar_decode_ms(codec: Any, cs: Any, repeat: int) -> float:
    """The generic per-block scalar loop, bypassing vectorised overrides."""

    def run() -> np.ndarray:
        residuals = BlockedInvListCodec._decode_all(codec, cs.payload, cs.n)
        return np.cumsum(residuals, dtype=np.int64)

    return measure(run, repeat=repeat, warmup=1) * 1000.0


def _measure_decode(wl: DecodeWorkload, quick: bool) -> dict:
    values = _workload_values(wl, quick)
    codec = get_codec(wl.codec)
    cs = codec.compress(values, universe=wl.universe)
    repeat = 2 if quick else 3
    decoded = codec.decompress(cs)
    if not np.array_equal(decoded, values):  # pragma: no cover - safety net
        raise AssertionError(f"{wl.codec} round-trip mismatch on {wl.name}")
    ms = measure(lambda: codec.decompress(cs), repeat=repeat, warmup=1) * 1000.0
    scalar_ms: float | None = None
    scalar_source: str | None = None
    if wl.scalar == "block_loop":
        scalar_ms = _scalar_decode_ms(codec, cs, repeat)
        scalar_source = "BlockedInvListCodec._decode_all block loop"
    elif wl.scalar == "frozen" and not quick:
        scalar_ms = _BBC_SCALAR_MS[wl.name]
        scalar_source = _BBC_SCALAR_SOURCE
    entry = {
        "kind": "decode",
        "codec": wl.codec,
        "n_values": int(values.size),
        "universe": wl.universe,
        "compressed_bytes": int(cs.size_bytes),
        "ms": round(ms, 3),
        "mips": round(values.size / ms / 1000.0, 2) if ms else None,
        "scalar_ms": round(scalar_ms, 3) if scalar_ms is not None else None,
        "scalar_source": scalar_source,
        "speedup_vs_scalar": (
            round(scalar_ms / ms, 2) if scalar_ms is not None and ms else None
        ),
    }
    return entry


def _measure_served(quick: bool) -> dict:
    """Closed-loop repeated-query p50, plan-cache warm vs fully cold."""
    list_size = SERVED_QUICK_LIST_SIZE if quick else SERVED_LIST_SIZE
    iters = SERVED_QUICK_ITERATIONS if quick else SERVED_ITERATIONS
    store = PostingStore()
    rng = np.random.default_rng(SEED)
    for name in ("s0", "s1"):
        shard = store.create_shard(name, codec=SERVED_CODEC, universe=SERVED_DOMAIN)
        shard.add(
            "hot", np.unique(rng.integers(0, SERVED_DOMAIN, size=list_size))
        )
        shard.add(
            "also",
            np.unique(rng.integers(0, SERVED_DOMAIN, size=list_size // 4)),
        )
    engine = QueryEngine(store, cache=DecodeCache(), cache_probes=True)
    expr = And(Or("hot", "also"), "hot")

    def p50(step: Callable[[], None]) -> float:
        times = []
        for _ in range(iters):
            t0 = time.perf_counter()
            step()
            times.append((time.perf_counter() - t0) * 1000.0)
        return float(np.median(times))

    def cold_step() -> None:
        engine.cache.clear()
        assert engine.plan_cache is not None
        engine.plan_cache.clear()
        assert engine.execute(expr).ok

    def warm_step() -> None:
        assert engine.execute(expr).ok

    cold_step()  # shake out lazy init before timing
    cold_p50 = p50(cold_step)
    warm_step()  # populate both cache layers
    warm_p50 = p50(warm_step)
    engine.close()
    plan_stats = engine.plan_cache.stats() if engine.plan_cache else None
    return {
        "kind": "served",
        "codec": SERVED_CODEC,
        "list_size": list_size,
        "iterations": iters,
        "cold_p50_ms": round(cold_p50, 4),
        "warm_p50_ms": round(warm_p50, 4),
        "speedup_warm_vs_cold": (
            round(cold_p50 / warm_p50, 2) if warm_p50 else None
        ),
        "plan_cache_hits": plan_stats.hits if plan_stats else None,
    }


def _save_term_store(directory: Path, n_terms: int, *, mapped: bool) -> None:
    store = PostingStore()
    shard = store.create_shard("s0", codec=MAPPED_CODEC, universe=MAPPED_UNIVERSE)
    rng = np.random.default_rng(SEED)
    for i in range(n_terms):
        shard.add(
            f"t{i:05d}",
            np.unique(rng.integers(0, MAPPED_UNIVERSE, size=MAPPED_LIST_SIZE)),
        )
    store.save(directory, mapped=mapped)


def _open_ms(directory: Path, repeat: int) -> float:
    return measure(lambda: PostingStore.load(directory), repeat=repeat, warmup=1) * 1000.0


def _heap_peak_kb(fn: Callable[[], Any]) -> float:
    """tracemalloc peak across *fn* — the RSS proxy the gate can measure
    portably (mmap pages are shared/evictable and invisible to it, which
    is exactly the point: they must not show up as Python heap)."""
    tracemalloc.start()
    try:
        fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024.0


def _measure_mapped_open(quick: bool) -> dict:
    """Cold-open latency + heap ceiling for a v3 mapped store, with an
    in-heap (v2) load of the same data as the reference."""
    n_terms = MAPPED_QUICK_TERMS if quick else MAPPED_TERMS
    repeat = 3 if quick else 5
    with tempfile.TemporaryDirectory(prefix="repro-perfgate-") as td:
        base = Path(td)
        _save_term_store(base / "mapped", n_terms, mapped=True)
        _save_term_store(base / "mapped4x", n_terms * MAPPED_FLATNESS_FACTOR, mapped=True)
        _save_term_store(base / "legacy", n_terms, mapped=False)

        open_ms = _open_ms(base / "mapped", repeat)
        open_4x_ms = _open_ms(base / "mapped4x", repeat)
        legacy_open_ms = _open_ms(base / "legacy", repeat)
        heap_peak_kb = _heap_peak_kb(lambda: PostingStore.load(base / "mapped"))
        legacy_heap_peak_kb = _heap_peak_kb(lambda: PostingStore.load(base / "legacy"))

    flatness = open_4x_ms / open_ms if open_ms else 1.0
    if flatness > MAPPED_FLATNESS_BOUND:  # pragma: no cover - regression net
        raise AssertionError(
            f"mapped cold-open is not flat in term count: {MAPPED_FLATNESS_FACTOR}x "
            f"terms cost {flatness:.2f}x the open time (bound "
            f"{MAPPED_FLATNESS_BOUND}x) — per-term work crept into open()"
        )
    if heap_peak_kb >= legacy_heap_peak_kb:  # pragma: no cover - regression net
        raise AssertionError(
            f"mapped open allocates as much heap as an in-heap load "
            f"({heap_peak_kb:.0f} KiB >= {legacy_heap_peak_kb:.0f} KiB) — "
            "the zero-copy open is materialising terms"
        )
    return {
        "kind": "mapped-open",
        "codec": MAPPED_CODEC,
        "terms": n_terms,
        "list_size": MAPPED_LIST_SIZE,
        "open_ms": round(open_ms, 4),
        "open_4x_ms": round(open_4x_ms, 4),
        "flatness_ratio": round(flatness, 2),
        "legacy_open_ms": round(legacy_open_ms, 4),
        "heap_peak_kb": round(heap_peak_kb, 1),
        "legacy_heap_peak_kb": round(legacy_heap_peak_kb, 1),
        "heap_savings": (
            round(legacy_heap_peak_kb / heap_peak_kb, 1) if heap_peak_kb else None
        ),
    }


def _measure_compressed_intersect(quick: bool) -> dict:
    """Cold-cache selective AND: compressed-domain execution vs the
    decode-then-intersect baseline, on in-heap and mapped backings."""
    long_draws = COMPRESSED_QUICK_LONG_DRAWS if quick else COMPRESSED_LONG_DRAWS
    short_draws = COMPRESSED_QUICK_SHORT_DRAWS if quick else COMPRESSED_SHORT_DRAWS
    iters = COMPRESSED_QUICK_ITERATIONS if quick else COMPRESSED_ITERATIONS
    rng = np.random.default_rng(SEED)
    long_list = np.unique(rng.integers(0, COMPRESSED_UNIVERSE, size=long_draws))
    window_lo = (COMPRESSED_UNIVERSE - COMPRESSED_SHORT_WINDOW) // 2
    short_list = np.unique(
        rng.integers(
            window_lo, window_lo + COMPRESSED_SHORT_WINDOW, size=short_draws
        )
    )
    expected = np.intersect1d(long_list, short_list)
    expr = And("long", "short")

    def build_store() -> PostingStore:
        store = PostingStore()
        shard = store.create_shard(
            "s0", codec=COMPRESSED_CODEC, universe=COMPRESSED_UNIVERSE
        )
        shard.add("long", long_list)
        shard.add("short", short_list)
        return store

    def p50_cold(engine: QueryEngine) -> float:
        times = []
        for _ in range(iters):
            if engine.cache is not None:
                engine.cache.clear()
            if engine.plan_cache is not None:
                engine.plan_cache.clear()
            t0 = time.perf_counter()
            result = engine.execute(expr)
            times.append((time.perf_counter() - t0) * 1000.0)
            if not result.ok or not np.array_equal(result.values, expected):
                raise AssertionError("compressed-intersect answered wrong")
        return float(np.median(times))

    entry: dict[str, Any] = {
        "kind": "compressed-intersect",
        "codec": COMPRESSED_CODEC,
        "universe": COMPRESSED_UNIVERSE,
        "long_n": int(long_list.size),
        "short_n": int(short_list.size),
        "iterations": iters,
    }
    with tempfile.TemporaryDirectory(prefix="repro-perfgate-") as td:
        build_store().save(Path(td) / "v3", mapped=True)
        for backing in ("inheap", "mapped"):
            store = (
                build_store()
                if backing == "inheap"
                else PostingStore.load(Path(td) / "v3")
            )
            compressed_engine = QueryEngine(store)
            decode_engine = QueryEngine(
                store,
                cache=DecodeCache(),
                cache_probes=True,
                compressed_ops=False,
            )
            # The counter contract behind the timings: the compressed arm
            # never materialises a leaf, the decode arm always does.
            probe = compressed_engine.execute(expr)
            if probe.compressed_ops == 0 or probe.decoded_ops != 0:
                raise AssertionError(
                    "compressed arm is not running in the compressed domain "
                    f"({probe.compressed_ops} compressed / "
                    f"{probe.decoded_ops} decoded ops)"
                )
            compressed_ms = p50_cold(compressed_engine)
            decode_ms = p50_cold(decode_engine)
            compressed_engine.close()
            decode_engine.close()
            speedup = decode_ms / compressed_ms if compressed_ms else None
            entry[f"{backing}_compressed_p50_ms"] = round(compressed_ms, 4)
            entry[f"{backing}_decode_p50_ms"] = round(decode_ms, 4)
            entry[f"{backing}_speedup"] = (
                round(speedup, 2) if speedup is not None else None
            )
            if speedup is not None and speedup < COMPRESSED_SPEEDUP_BOUND:
                # pragma: no cover - regression net
                raise AssertionError(
                    f"compressed-domain AND on the {backing} backing is only "
                    f"{speedup:.2f}x faster than decode-then-intersect "
                    f"(bound {COMPRESSED_SPEEDUP_BOUND}x) — the capability "
                    "protocol is no longer paying for itself"
                )
    return entry


def run_suite(quick: bool = False) -> dict:
    """Execute the pinned matrix; returns the JSON-able result document."""
    workloads: dict[str, dict] = {}
    for wl in DECODE_WORKLOADS:
        workloads[wl.name] = _measure_decode(wl, quick)
    workloads["served-closed-loop"] = _measure_served(quick)
    workloads["mapped-cold-open"] = _measure_mapped_open(quick)
    workloads["compressed-intersect"] = _measure_compressed_intersect(quick)
    return {
        "schema": SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "seed": SEED,
        "workloads": workloads,
    }


# ----------------------------------------------------------------------
# Baseline comparison
# ----------------------------------------------------------------------
#: Which numeric fields of each workload entry the gate compares.
#: ``heap_peak_kb`` is KiB, not ms — the ratio gate is unit-agnostic and
#: pins the mapped open's committed RSS-proxy ceiling alongside its
#: latency.
_GATED_FIELDS = {
    "ms",
    "cold_p50_ms",
    "warm_p50_ms",
    "open_ms",
    "heap_peak_kb",
    "inheap_compressed_p50_ms",
    "mapped_compressed_p50_ms",
}


@dataclass(frozen=True)
class GateFinding:
    """One compared metric: ``ratio = current / baseline`` (higher=slower)."""

    metric: str
    baseline_ms: float
    current_ms: float

    @property
    def ratio(self) -> float:
        return self.current_ms / self.baseline_ms if self.baseline_ms else 1.0

    def status(self, warn: float = WARN_RATIO, fail: float = FAIL_RATIO) -> str:
        if self.ratio > fail:
            return "fail"
        if self.ratio > warn:
            return "warn"
        return "ok"


def compare(results: dict, baseline: dict) -> list[GateFinding]:
    """Pair every gated metric present in both documents.

    Metrics missing from either side are skipped (new workloads enter
    the gate on the next ``update``); modes never cross-compare because
    the caller selects the baseline section by mode.
    """
    findings: list[GateFinding] = []
    base_wl = baseline.get("workloads", {})
    for name, entry in results.get("workloads", {}).items():
        base_entry = base_wl.get(name)
        if not isinstance(base_entry, dict):
            continue
        for field in sorted(_GATED_FIELDS & entry.keys() & base_entry.keys()):
            cur, base = entry[field], base_entry[field]
            if isinstance(cur, (int, float)) and isinstance(base, (int, float)):
                findings.append(GateFinding(f"{name}.{field}", float(base), float(cur)))
    return findings


def _load_baseline(path: Path, mode: str) -> dict | None:
    if not path.exists():
        return None
    doc = json.loads(path.read_text())
    section = doc.get(mode)
    return section if isinstance(section, dict) else None


def _store_baseline(path: Path, results: dict) -> None:
    doc = json.loads(path.read_text()) if path.exists() else {}
    doc[results["mode"]] = results
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.perf_gate", description=__doc__
    )
    parser.add_argument(
        "command",
        choices=("run", "check", "update"),
        help="run: measure + print/save; check: compare against baseline; "
        "update: measure + rewrite the baseline section for this mode",
    )
    parser.add_argument("--quick", action="store_true", help="CI-sized workloads")
    parser.add_argument(
        "--baseline", type=Path, default=DEFAULT_BASELINE, help="baseline JSON path"
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="also write results JSON here"
    )
    parser.add_argument("--warn", type=float, default=WARN_RATIO)
    parser.add_argument("--fail", type=float, default=FAIL_RATIO)
    args = parser.parse_args(argv)

    results = run_suite(quick=args.quick)
    if args.output is not None:
        args.output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
        print(f"wrote {args.output}")

    if args.command == "update":
        _store_baseline(args.baseline, results)
        print(f"baseline[{results['mode']}] updated in {args.baseline}")
        return 0

    for name, entry in results["workloads"].items():
        if entry["kind"] == "decode":
            speedup = entry["speedup_vs_scalar"]
            extra = f"  {speedup}x vs scalar" if speedup is not None else ""
            print(f"  {name:<20}{entry['ms']:>10.2f} ms{extra}")
        elif entry["kind"] == "compressed-intersect":
            print(
                f"  {name:<20}"
                f"in-heap {entry['inheap_compressed_p50_ms']:.3f} ms "
                f"({entry['inheap_speedup']}x vs decode), "
                f"mapped {entry['mapped_compressed_p50_ms']:.3f} ms "
                f"({entry['mapped_speedup']}x vs decode)"
            )
        elif entry["kind"] == "mapped-open":
            print(
                f"  {name:<20}open {entry['open_ms']:.3f} ms "
                f"({entry['flatness_ratio']}x at {MAPPED_FLATNESS_FACTOR}x terms), "
                f"heap peak {entry['heap_peak_kb']:.0f} KiB "
                f"(in-heap load: {entry['legacy_heap_peak_kb']:.0f} KiB)"
            )
        else:
            print(
                f"  {name:<20}cold p50 {entry['cold_p50_ms']:.3f} ms, "
                f"warm p50 {entry['warm_p50_ms']:.3f} ms "
                f"({entry['speedup_warm_vs_cold']}x)"
            )

    if args.command == "run":
        return 0

    baseline = _load_baseline(args.baseline, results["mode"])
    if baseline is None:
        print(
            f"no '{results['mode']}' baseline in {args.baseline}; "
            "run the 'update' command to create one",
            file=sys.stderr,
        )
        return 0  # warn-only: a missing baseline must not block CI
    findings = compare(results, baseline)
    worst = "ok"
    for f in findings:
        status = f.status(args.warn, args.fail)
        if status != "ok":
            unit = "KiB" if f.metric.endswith("_kb") else "ms"
            print(
                f"{status.upper()}: {f.metric} {f.baseline_ms:.3f} -> "
                f"{f.current_ms:.3f} {unit} ({f.ratio:.2f}x)",
                file=sys.stderr,
            )
        if status == "fail" or (status == "warn" and worst == "ok"):
            worst = status
    if worst == "fail":
        print(f"perf gate FAILED (> {args.fail}x regression)", file=sys.stderr)
        return 1
    print(f"perf gate ok ({len(findings)} metrics, worst status: {worst})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
