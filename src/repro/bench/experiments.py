"""One function per table/figure of the paper's evaluation.

Every function regenerates the corresponding experiment at a
density-preserving scale (see DESIGN.md §2: the paper's 1M…1B lists over
a 2^31 domain map to 1K…1M lists over a 2^21 domain, keeping every n/d
density — the quantity that drives the paper's findings).  Each returns
the raw :class:`~repro.bench.harness.MetricRow` list; the CLI renders
them as paper-style tables.

| id    | paper content                                        |
|-------|------------------------------------------------------|
| fig3  | decompression time + space, 3 distributions × sizes  |
| tab1  | intersection time, ratio 1000, varying |L2|          |
| tab2  | union time, same grid                                |
| tab3  | intersection time vs list-size ratio θ ∈ {1, 10}     |
| fig4  | SSB Q1.1/Q2.1/Q3.4/Q4.1 × SF                         |
| fig5  | TPCH Q6/Q12 × SF                                     |
| fig6  | Web query log: mean intersection & union             |
| fig7  | skip pointers on/off                                 |
| fig8  | Graph Q1/Q2                                          |
| fig9  | KDDCup Q1/Q2                                         |
| fig10 | Berkeleyearth Q1/Q2                                  |
| fig11 | Higgs Q1/Q2                                          |
| fig12 | Kegg Q1/Q2                                           |
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import (
    MetricRow,
    bench_decompression,
    bench_pair,
    bench_query,
    bench_served,
    build_expression,
    resolve_codecs,
)
from repro.bench.timing import measure_ms
from repro.core.registry import get_codec
from repro.datagen.pairs import generator, list_pair
from repro.datasets import (
    berkeleyearth_queries,
    graph_queries,
    higgs_queries,
    kddcup_queries,
    kegg_queries,
    ssb_queries,
    tpch_queries,
    web_workload,
)
from repro.ops.expressions import evaluate
from repro.store.plan import And, Or, Term

#: Scaled synthetic domain (paper: INTMAX = 2^31 − 1).
DEFAULT_DOMAIN = 2**21 - 1
#: Scaled list sizes standing in for the paper's 1M / 10M / 100M / 1B.
DEFAULT_SIZES = (1_000, 10_000, 100_000, 1_000_000)
SIZE_LABELS = {1_000: "1K", 10_000: "10K", 100_000: "100K", 1_000_000: "1M"}
DISTRIBUTIONS = ("uniform", "zipf", "markov")
#: |L2| / |L1| for Tables 1–2.
DEFAULT_RATIO = 1000


def _label(size: int) -> str:
    return SIZE_LABELS.get(size, str(size))


# ----------------------------------------------------------------------
# Synthetic experiments (Section 5)
# ----------------------------------------------------------------------
def figure3(
    codecs: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    domain: int = DEFAULT_DOMAIN,
    distributions: Sequence[str] = DISTRIBUTIONS,
    repeat: int = 3,
    seed: int = 20170514,
) -> list[MetricRow]:
    """Figure 3: decompression time and space, 12 panels."""
    rows = []
    rng = np.random.default_rng(seed)
    for dist in distributions:
        gen = generator(dist)
        for size in sizes:
            values = gen(size, domain, rng=rng)
            rows += bench_decompression(
                values,
                domain,
                codecs=codecs,
                workload=f"{dist}/{_label(size)}",
                repeat=repeat,
            )
    return rows


def table1(
    codecs: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    domain: int = DEFAULT_DOMAIN,
    distributions: Sequence[str] = DISTRIBUTIONS,
    ratio: int = DEFAULT_RATIO,
    repeat: int = 3,
    seed: int = 20170515,
) -> list[MetricRow]:
    """Table 1: intersection time with |L2|/|L1| = 1000, varying |L2|."""
    return _pair_grid(
        codecs, sizes, domain, distributions, ratio, repeat, seed, ("intersect",)
    )


def table2(
    codecs: Sequence[str] | None = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    domain: int = DEFAULT_DOMAIN,
    distributions: Sequence[str] = DISTRIBUTIONS,
    ratio: int = DEFAULT_RATIO,
    repeat: int = 3,
    seed: int = 20170516,
) -> list[MetricRow]:
    """Table 2: union time with |L2|/|L1| = 1000, varying |L2|."""
    return _pair_grid(
        codecs, sizes, domain, distributions, ratio, repeat, seed, ("union",)
    )


def _pair_grid(
    codecs, sizes, domain, distributions, ratio, repeat, seed, operations
) -> list[MetricRow]:
    rows = []
    rng = np.random.default_rng(seed)
    for dist in distributions:
        for size in sizes:
            short, long_ = list_pair(dist, size, ratio, domain, rng=rng)
            rows += bench_pair(
                short,
                long_,
                domain,
                codecs=codecs,
                workload=f"{dist}/{_label(size)}",
                repeat=repeat,
                operations=operations,
            )
    return rows


def table3(
    codecs: Sequence[str] | None = None,
    long_size: int = 100_000,
    domain: int = DEFAULT_DOMAIN,
    distributions: Sequence[str] = DISTRIBUTIONS,
    ratios: Sequence[int] = (1, 10),
    repeat: int = 3,
    seed: int = 20170517,
) -> list[MetricRow]:
    """Table 3: intersection time vs list-size ratio θ (merge regime)."""
    rows = []
    rng = np.random.default_rng(seed)
    for dist in distributions:
        for theta in ratios:
            short, long_ = list_pair(dist, long_size, theta, domain, rng=rng)
            rows += bench_pair(
                short,
                long_,
                domain,
                codecs=codecs,
                workload=f"{dist}/θ={theta}",
                repeat=repeat,
                operations=("intersect",),
            )
    return rows


# ----------------------------------------------------------------------
# Real-data experiments (Section 6 + Appendix C)
# ----------------------------------------------------------------------
def figure4(
    codecs: Sequence[str] | None = None,
    scale_factors: Sequence[int] = (1, 10, 100),
    scale: float = 0.01,
    repeat: int = 3,
    seed: int = 20170518,
) -> list[MetricRow]:
    """Figure 4: SSB Q1.1/Q2.1/Q3.4/Q4.1 at SF 1/10/100 (time + space)."""
    rows = []
    rng = np.random.default_rng(seed)
    for sf in scale_factors:
        for query in ssb_queries(sf, scale=scale, rng=rng):
            out = bench_query(query, codecs=codecs, repeat=repeat)
            for r in out:
                r.workload = f"{query.name}/SF={sf}"
            rows += out
    return rows


def figure5(
    codecs: Sequence[str] | None = None,
    scale_factors: Sequence[int] = (1, 10, 100),
    scale: float = 0.01,
    repeat: int = 3,
    seed: int = 20170519,
) -> list[MetricRow]:
    """Figure 5: TPCH Q6/Q12 at SF 1/10/100 (time + space)."""
    rows = []
    rng = np.random.default_rng(seed)
    for sf in scale_factors:
        for query in tpch_queries(sf, scale=scale, rng=rng):
            out = bench_query(query, codecs=codecs, repeat=repeat)
            for r in out:
                r.workload = f"{query.name}/SF={sf}"
            rows += out
    return rows


def figure6(
    codecs: Sequence[str] | None = None,
    n_docs: int = 200_000,
    n_queries: int = 30,
    repeat: int = 1,
    seed: int = 20170520,
) -> list[MetricRow]:
    """Figure 6: Web query log — mean intersection & union time + space.

    Space is the compressed size of the index slice the log touches
    (each distinct term list counted once).
    """
    queries = web_workload(n_docs=n_docs, n_queries=n_queries, rng=seed)
    rows = []
    for name in resolve_codecs(codecs):
        codec = get_codec(name)
        cache: dict[int, object] = {}

        def compressed(lst: np.ndarray):
            key = id(lst)
            if key not in cache:
                cache[key] = codec.compress(lst, universe=n_docs)
            return cache[key]

        isect_total = 0.0
        union_total = 0.0
        for query in queries:
            sets = [compressed(lst) for lst in query.lists]
            expr = build_expression(query, sets)
            isect_total += measure_ms(lambda: evaluate(expr), repeat=repeat)
            union_total += measure_ms(
                lambda: codec.union_many(sets), repeat=repeat
            )
        space = sum(cs.size_bytes for cs in cache.values())
        row = MetricRow(name, codec.family, "web", space_bytes=space)
        row.intersect_ms = isect_total / len(queries)
        row.union_ms = union_total / len(queries)
        rows.append(row)
    return rows


def figure7(
    codecs: Sequence[str] = (
        "VB",
        "PforDelta",
        "SIMDPforDelta",
        "SIMDPforDelta*",
        "GroupVB",
    ),
    long_size: int = 10_000,
    ratio: int = 1000,
    domain: int = DEFAULT_DOMAIN,
    distributions: Sequence[str] = ("uniform", "zipf"),
    repeat: int = 3,
    seed: int = 20170521,
) -> list[MetricRow]:
    """Figure 7: effect of skip pointers on intersection time and space.

    Each codec runs twice — with and without skip pointers — over the
    same list pair (paper: |L2| = 10M, |L2|/|L1| = 1000).
    """
    rows = []
    rng = np.random.default_rng(seed)
    for dist in distributions:
        short, long_ = list_pair(dist, long_size, ratio, domain, rng=rng)
        for name in codecs:
            default = get_codec(name)
            for with_skips in (True, False):
                codec = type(default)(skip_pointers=with_skips)
                ca = codec.compress(short, universe=domain)
                cb = codec.compress(long_, universe=domain)
                suffix = "skips" if with_skips else "noskips"
                row = MetricRow(
                    name,
                    codec.family,
                    f"{dist}/{suffix}",
                    space_bytes=ca.size_bytes + cb.size_bytes,
                )
                row.intersect_ms = measure_ms(
                    lambda: codec.intersect(ca, cb), repeat=repeat
                )
                rows.append(row)
    return rows


def _dataset_figure(queries, codecs, repeat) -> list[MetricRow]:
    rows = []
    for query in queries:
        rows += bench_query(query, codecs=codecs, repeat=repeat)
    return rows


def figure8(
    codecs: Sequence[str] | None = None,
    repeat: int = 3,
    seed: int = 20170522,
) -> list[MetricRow]:
    """Figure 8: Graph (Twitter) Q1/Q2 intersection."""
    return _dataset_figure(graph_queries(rng=seed), codecs, repeat)


def figure9(
    codecs: Sequence[str] | None = None,
    repeat: int = 3,
    seed: int = 20170523,
) -> list[MetricRow]:
    """Figure 9: KDDCup Q1/Q2 intersection."""
    return _dataset_figure(kddcup_queries(rng=seed), codecs, repeat)


def figure10(
    codecs: Sequence[str] | None = None,
    repeat: int = 3,
    seed: int = 20170524,
) -> list[MetricRow]:
    """Figure 10: Berkeleyearth Q1/Q2 intersection."""
    return _dataset_figure(berkeleyearth_queries(rng=seed), codecs, repeat)


def figure11(
    codecs: Sequence[str] | None = None,
    repeat: int = 3,
    seed: int = 20170525,
) -> list[MetricRow]:
    """Figure 11: Higgs Q1/Q2 intersection."""
    return _dataset_figure(higgs_queries(rng=seed), codecs, repeat)


def figure12(
    codecs: Sequence[str] | None = None,
    repeat: int = 3,
    seed: int = 20170526,
) -> list[MetricRow]:
    """Figure 12: Kegg Q1/Q2 intersection."""
    return _dataset_figure(kegg_queries(rng=seed), codecs, repeat)


def served(
    codecs: Sequence[str] | None = None,
    repeat: int = 3,
    n_terms: int = 24,
    list_size: int = 4_000,
    n_queries: int = 48,
    domain: int = 2**18,
    seed: int = 20170527,
) -> list[MetricRow]:
    """Served mode: cold vs warm query batches through the posting store.

    Not a paper experiment — the ROADMAP's serving extension.  Each codec
    hosts the same term lists in a :class:`repro.store.PostingStore`; a
    skewed batch (hot terms repeat) runs cold then warm, so the table
    shows what the decode cache buys per codec.  ``repeat`` is accepted
    for CLI uniformity but unused: cold/warm is inherently two passes.
    """
    del repeat
    rng = np.random.default_rng(seed)
    terms = {
        f"t{i:03d}": generator("uniform")(
            max(1, int(list_size * (0.5 + rng.random()))), domain, rng=rng
        )
        for i in range(n_terms)
    }
    names = sorted(terms)

    def hot() -> str:
        return names[int(rng.random() ** 2 * len(names)) % len(names)]

    queries: list = []
    for q in range(n_queries):
        shape = q % 4
        if shape == 0:
            queries.append(Term(hot()))
        elif shape == 1:
            queries.append(And(hot(), hot()))
        elif shape == 2:
            queries.append(Or(hot(), hot()))
        else:
            queries.append(And(Or(hot(), hot()), hot()))
    return bench_served(terms, queries, universe=domain, codecs=codecs)


def closed_loop(
    codecs: Sequence[str] | None = None,
    repeat: int = 1,
    n_terms: int = 16,
    list_size: int = 2_000,
    domain: int = 2**17,
    seed: int = 20170530,
    clients: int = 8,
    requests_per_client: int = 12,
    deadline_ms: float = 250.0,
    slow_shard_ms: float = 20.0,
    queue_depth: int = 16,
    workers: int = 4,
) -> list[MetricRow]:
    """Closed-loop serving: concurrent HTTP clients against a live server.

    Not a paper experiment — this measures the :mod:`repro.server`
    network layer end to end.  Per codec, a two-shard store (one shard
    slowed by ``slow_shard_ms`` through the engine's fault-injection
    hook) is put behind an in-process :class:`StoreServer` with a
    bounded admission queue; ``clients`` closed-loop clients each issue
    ``requests_per_client`` queries with a per-request deadline header
    and **no retries**, so every shed request is visible in the results.
    ``intersect_ms`` reports client-observed p99 latency; ``extra``
    carries the offered/accepted/shed accounting (cross-checked against
    the server's ``/metrics``), p50, throughput, and the response-status
    mix.  ``repeat`` is accepted for CLI uniformity but unused.
    """
    del repeat
    import threading
    import time as _time

    from repro.api import connect
    from repro.server import (
        BackgroundServer,
        ServerUnavailableError,
        StoreServer,
    )
    from repro.store.cache import DecodeCache
    from repro.store.engine import QueryEngine
    from repro.store.store import PostingStore

    names = list(codecs) if codecs is not None else ["Roaring"]
    rows = []
    for name in names:
        rng = np.random.default_rng(seed)
        store = PostingStore()
        for s in range(2):
            shard = store.create_shard(f"s{s}", codec=name, universe=domain)
            for t in range(n_terms):
                n = max(1, int(list_size * (0.5 + rng.random())))
                shard.add(
                    f"t{t:03d}",
                    generator("uniform")(min(n, domain), domain, rng=rng),
                )
        engine = QueryEngine(
            store,
            cache=DecodeCache(max_entries=512),
            shard_delays={"s1": slow_shard_ms / 1000.0} if slow_shard_ms else None,
        )
        server = StoreServer(
            engine, max_pending=queue_depth, workers=workers, grace_factor=4.0
        )

        def hot() -> str:
            return f"t{int(rng.random() ** 2 * n_terms) % n_terms:03d}"

        # Pre-generate each client's queries: the rng is not thread-safe.
        plans = []
        for _c in range(clients):
            qs: list = []
            for q in range(requests_per_client):
                shape = q % 3
                if shape == 0:
                    qs.append(Term(hot()))
                elif shape == 1:
                    qs.append(And(hot(), hot()))
                else:
                    qs.append(And(Or(hot(), hot()), hot()))
            plans.append(qs)

        lock = threading.Lock()
        latencies: list[float] = []
        statuses: dict[str, int] = {}

        def run_client(qs: list) -> None:
            with connect(
                f"http://127.0.0.1:{server.port}", max_retries=0, timeout_s=30.0
            ) as client:
                for q in qs:
                    t0 = _time.perf_counter()
                    try:
                        status = client.query(q, deadline_ms=deadline_ms).status
                    except ServerUnavailableError:
                        status = "shed"
                    ms = (_time.perf_counter() - t0) * 1000.0
                    with lock:
                        statuses[status] = statuses.get(status, 0) + 1
                        if status != "shed":
                            latencies.append(ms)

        with BackgroundServer(server):
            t0 = _time.perf_counter()
            threads = [
                threading.Thread(target=run_client, args=(qs,)) for qs in plans
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            wall_s = _time.perf_counter() - t0
            with connect(f"http://127.0.0.1:{server.port}") as probe:
                admission = probe.metrics()["server"]["admission"]

        offered = clients * requests_per_client
        if admission["accepted"] + admission["shed"] != admission["offered"]:
            raise AssertionError(
                f"{name}: admission accounting leak: {admission}"
            )
        if admission["offered"] != offered:
            raise AssertionError(
                f"{name}: offered {admission['offered']} != sent {offered}"
            )
        answered = sorted(latencies)

        def pct(p: float) -> float:
            if not answered:
                return float("nan")
            return answered[min(len(answered) - 1, int(p * len(answered)))]

        sizes = sum(store.shard(s).size_bytes for s in store.shard_names())
        codec = store.shard("s0").codec
        row = MetricRow(
            name,
            codec.family if name != "Adaptive" else "hybrid",
            "closed_loop",
            space_bytes=sizes,
        )
        row.intersect_ms = pct(0.99)
        row.extra = {
            "clients": clients,
            "offered": admission["offered"],
            "accepted": admission["accepted"],
            "shed": admission["shed"],
            "shed_rate": admission["shed"] / max(1, admission["offered"]),
            "p50_ms": pct(0.50),
            "p99_ms": pct(0.99),
            "throughput_qps": len(answered) / wall_s if wall_s else float("inf"),
            "statuses": dict(sorted(statuses.items())),
        }
        rows.append(row)
    return rows


def churn(
    codecs: Sequence[str] | None = None,
    repeat: int = 1,
    n_terms: int = 16,
    list_size: int = 1_000,
    domain: int = 2**17,
    seed: int = 20170531,
    clients: int = 4,
    requests_per_client: int = 12,
    ingest_batches: int = 16,
    ops_per_batch: int = 8,
    compact_interval_s: float = 0.05,
    queue_depth: int = 16,
    workers: int = 4,
    backings: Sequence[str] = ("in-heap",),
) -> list[MetricRow]:
    """Churn serving: queries race live ingest and background compaction.

    Not a paper experiment — the write-path extension's end-to-end
    figure.  Per codec, a :class:`WritablePostingStore` is preloaded,
    compacted once, and put behind an in-process server with its
    background compactor running at ``compact_interval_s``.  A writer
    client then streams ``ingest_batches`` durable batches over
    ``POST /ingest`` while ``clients`` closed-loop readers query the
    same shard, so every query potentially merges the live delta and
    may land mid-compaction.  ``intersect_ms`` reports reader-observed
    p99 latency; ``extra`` carries the ingest-side p50/p99 (arrival →
    durable ack), acked-op and compaction counts from ``/metrics``, and
    the response-status mix.  Any ``failed`` query raises — compaction
    must never be visible as an error.  ``repeat`` is accepted for CLI
    uniformity but unused.

    ``backings`` selects the segment format(s) to run: ``"in-heap"``
    opens a legacy (v2) store, ``"mapped"`` a memory-mapped v3 store
    whose compactions rewrite and retire whole-segment files while the
    readers race them.  One row per (codec, backing), tagged via
    ``extra["store_backing"]``.
    """
    del repeat
    import tempfile
    import threading
    import time as _time

    from repro.api import connect
    from repro.server import (
        BackgroundServer,
        ServerUnavailableError,
        StoreServer,
    )
    from repro.store.__main__ import synthetic_ops
    from repro.store.cache import DecodeCache
    from repro.store.engine import QueryEngine
    from repro.store.segments import WritablePostingStore

    names = list(codecs) if codecs is not None else ["Roaring"]
    rows = []
    for name, backing in [(n, b) for n in names for b in backings]:
        rng = np.random.default_rng(seed)
        with tempfile.TemporaryDirectory(prefix="repro-churn-") as tmp:
            store = WritablePostingStore.open(tmp, mapped=(backing == "mapped"))
            store.create_shard("s0", codec=name, universe=domain)
            preload = []
            for t in range(n_terms):
                n = max(1, int(list_size * (0.5 + rng.random())))
                values = generator("uniform")(min(n, domain), domain, rng=rng)
                preload.append(("add", "s0", f"t{t:03d}", values))
            store.ingest_batch(preload)
            store.compact()
            store.start_compactor(compact_interval_s)
            engine = QueryEngine(store, cache=DecodeCache(max_entries=512))
            server = StoreServer(
                engine, max_pending=queue_depth, workers=workers, grace_factor=4.0
            )

            def hot() -> str:
                return f"t{int(rng.random() ** 2 * n_terms) % n_terms:03d}"

            plans = []
            for _c in range(clients):
                qs: list = []
                for q in range(requests_per_client):
                    shape = q % 3
                    if shape == 0:
                        qs.append(Term(hot()))
                    elif shape == 1:
                        qs.append(And(hot(), hot()))
                    else:
                        qs.append(And(Or(hot(), hot()), hot()))
                plans.append(qs)
            batches = synthetic_ops(
                seed + 1,
                ingest_batches,
                ops_per_batch,
                shard="s0",
                n_terms=n_terms,
                domain=domain,
            )

            lock = threading.Lock()
            query_ms: list[float] = []
            ingest_ms: list[float] = []
            statuses: dict[str, int] = {}
            acked = 0

            def run_reader(qs: list) -> None:
                with connect(
                    f"http://127.0.0.1:{server.port}", max_retries=0,
                    timeout_s=30.0,
                ) as client:
                    for q in qs:
                        t0 = _time.perf_counter()
                        try:
                            status = client.query(q).status
                        except ServerUnavailableError:
                            status = "shed"
                        ms = (_time.perf_counter() - t0) * 1000.0
                        with lock:
                            statuses[status] = statuses.get(status, 0) + 1
                            if status != "shed":
                                query_ms.append(ms)

            def run_writer() -> None:
                nonlocal acked
                with connect(
                    f"http://127.0.0.1:{server.port}", max_retries=3,
                    timeout_s=30.0,
                ) as client:
                    for i, batch in enumerate(batches):
                        t0 = _time.perf_counter()
                        resp = client.ingest(batch, batch_id=f"b{i:04d}")
                        ms = (_time.perf_counter() - t0) * 1000.0
                        with lock:
                            ingest_ms.append(ms)
                            if resp.ok:
                                acked += resp.acked_ops

            with BackgroundServer(server):
                t0 = _time.perf_counter()
                threads = [
                    threading.Thread(target=run_reader, args=(qs,))
                    for qs in plans
                ]
                threads.append(threading.Thread(target=run_writer))
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                wall_s = _time.perf_counter() - t0
                with connect(f"http://127.0.0.1:{server.port}") as probe:
                    metrics = probe.metrics()
            store.close(compact=False)

            if statuses.get("failed"):
                raise AssertionError(
                    f"{name}: {statuses['failed']} queries failed under churn: "
                    f"{statuses}"
                )

            def pct(samples: list[float], p: float) -> float:
                if not samples:
                    return float("nan")
                ordered = sorted(samples)
                return ordered[min(len(ordered) - 1, int(p * len(ordered)))]

            write_path = metrics.get("write_path", {})
            space = sum(
                store.shard(s).size_bytes for s in store.shard_names()
            )
            codec = store.shard("s0").codec
            row = MetricRow(
                name,
                codec.family if name != "Adaptive" else "hybrid",
                "churn",
                space_bytes=space,
            )
            row.intersect_ms = pct(query_ms, 0.99)
            row.extra = {
                "clients": clients,
                "store_backing": backing,
                "acked_ops": acked,
                "compactions": write_path.get("compactions", 0),
                "generation": write_path.get("generation", 0),
                "query_p50_ms": pct(query_ms, 0.50),
                "query_p99_ms": pct(query_ms, 0.99),
                "ingest_p50_ms": pct(ingest_ms, 0.50),
                "ingest_p99_ms": pct(ingest_ms, 0.99),
                "throughput_qps": (
                    len(query_ms) / wall_s if wall_s else float("inf")
                ),
                "statuses": dict(sorted(statuses.items())),
            }
            rows.append(row)
    return rows


def cluster(
    codecs: Sequence[str] | None = None,
    repeat: int = 1,
    n_shards: int = 4,
    n_terms: int = 16,
    list_size: int = 1_000,
    domain: int = 2**16,
    seed: int = 20170601,
    n_backends: int = 3,
    replication: int = 2,
    clients: int = 6,
    requests_per_client: int = 10,
    slow_shard_ms: float = 200.0,
    hedge_max_ms: float = 50.0,
    kill_after_fraction: float = 0.3,
) -> list[MetricRow]:
    """Scatter-gather serving: a router over real backend *processes*.

    Not a paper experiment — this measures :mod:`repro.cluster` end to
    end, with backends as separate ``python -m repro.server``
    subprocesses (so the failover phase can SIGKILL one for real).  Per
    codec, one store is saved once and served identically by
    ``n_backends`` subprocess backends at the given ``replication``;
    one backend (chosen so it is a cold-start primary) drags every
    shard by ``slow_shard_ms`` — the straggler hedging exists to beat.
    Four phases, each a fresh closed loop of ``clients`` ×
    ``requests_per_client`` queries with no retries:

    1. **baseline** — straight at one fast backend (no router);
    2. **unhedged** — through a fresh router with hedging off: cold
       placement sends every slow-primary group into the straggler, so
       its p99 carries the full ``slow_shard_ms``;
    3. **hedged** — a fresh router with the hedge-delay band capped at
       ``hedge_max_ms``: the speculative replica rescues those groups,
       which is the p99 cut the CI job asserts on;
    4. **failover** — hedged router again; after ``kill_after_fraction``
       of requests one *fast* backend is SIGKILLed mid-loop.  With
       ``replication >= 2`` every query must still answer
       (``status != failed``), counted in ``extra["failover"]``.

    ``intersect_ms`` reports the hedged-phase p99.  ``repeat`` is
    accepted for CLI uniformity but unused.
    """
    del repeat
    import json as _json
    import os
    import signal
    import subprocess
    import sys
    import tempfile
    import threading
    import time as _time

    from repro.api import connect
    from repro.cluster import Backend, ClusterRouter, ShardMap
    from repro.server import BackgroundServer, ServerUnavailableError
    from repro.store.__main__ import build_store

    names = list(codecs) if codecs is not None else ["Roaring"]
    rows = []
    for name in names:
        store = build_store(
            n_shards, n_terms, name, "uniform", list_size, domain, seed
        )
        shards = tuple(sorted(store.shard_names()))
        rng = np.random.default_rng(seed)

        # Cold-start primaries are placement order, so pick the
        # straggler as a backend that is primary for >= 1 group.
        probe = ShardMap(
            tuple(
                Backend(backend_id=f"b{i}", host="127.0.0.1", port=1)
                for i in range(n_backends)
            ),
            shards,
            replication=replication,
        )
        slow_idx = int(probe.replicas(shards[0])[0][1:])
        fast_idx = next(i for i in range(n_backends) if i != slow_idx)

        def hot() -> str:
            return f"t{int(rng.random() ** 2 * n_terms) % n_terms:03d}"

        plans = []
        for _c in range(clients):
            qs: list = []
            for q in range(requests_per_client):
                shape = q % 3
                if shape == 0:
                    qs.append(Term(hot()))
                elif shape == 1:
                    qs.append(Or(hot(), hot()))
                else:
                    qs.append(And(Or(hot(), hot()), hot()))
            plans.append(qs)

        def run_loop(port: int, on_request=None) -> tuple[dict, list[float]]:
            lock = threading.Lock()
            latencies: list[float] = []
            statuses: dict[str, int] = {}
            sent = [0]

            def run_client(qs: list) -> None:
                with connect(
                    f"http://127.0.0.1:{port}", max_retries=0, timeout_s=30.0
                ) as target:
                    for q in qs:
                        with lock:
                            sent[0] += 1
                            n_sent = sent[0]
                        if on_request is not None:
                            on_request(n_sent)
                        t0 = _time.perf_counter()
                        try:
                            status = target.query(q).status
                        except ServerUnavailableError:
                            status = "unavailable"
                        ms = (_time.perf_counter() - t0) * 1000.0
                        with lock:
                            statuses[status] = statuses.get(status, 0) + 1
                            latencies.append(ms)

            threads = [
                threading.Thread(target=run_client, args=(qs,))
                for qs in plans
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            return statuses, sorted(latencies)

        def pct(sorted_ms: list[float], p: float) -> float:
            if not sorted_ms:
                return float("nan")
            return sorted_ms[min(len(sorted_ms) - 1, int(p * len(sorted_ms)))]

        with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
            store_dir = os.path.join(tmp, "store")
            store.save(store_dir)
            procs: list[subprocess.Popen] = []
            try:
                backend_ports = []
                for i in range(n_backends):
                    argv = [
                        sys.executable, "-m", "repro.server",
                        "--store", store_dir, "--port", "0",
                    ]
                    if i == slow_idx:
                        for shard in shards:
                            argv += ["--slow-shard", f"{shard}:{slow_shard_ms}"]
                    proc = subprocess.Popen(
                        argv, stdout=subprocess.PIPE, text=True
                    )
                    procs.append(proc)
                    line = proc.stdout.readline()
                    backend_ports.append(
                        int(_json.loads(line)["listening"].rsplit(":", 1)[1])
                    )
                backends = tuple(
                    Backend(backend_id=f"b{i}", host="127.0.0.1", port=p)
                    for i, p in enumerate(backend_ports)
                )
                shardmap = ShardMap(backends, shards, replication=replication)

                def routed_loop(hedge: bool, on_request=None):
                    router = ClusterRouter(
                        shardmap, hedge=hedge, hedge_max_ms=hedge_max_ms
                    )
                    with BackgroundServer(router) as bg:
                        statuses, ms = run_loop(bg.port, on_request)
                    return router, statuses, ms

                base_statuses, base_ms = run_loop(backend_ports[fast_idx])
                _, unhedged_statuses, unhedged_ms = routed_loop(hedge=False)
                hedged_router, hedged_statuses, hedged_ms = routed_loop(
                    hedge=True
                )

                total = clients * requests_per_client
                kill_at = max(1, int(total * kill_after_fraction))
                victim = procs[fast_idx]
                kill_lock = threading.Lock()
                killed = [False]

                def kill_one(n_sent: int) -> None:
                    with kill_lock:
                        if n_sent < kill_at or killed[0]:
                            return
                        killed[0] = True
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.wait()

                failover_router, failover_statuses, failover_ms = routed_loop(
                    hedge=True, on_request=kill_one
                )
            finally:
                for proc in procs:
                    if proc.poll() is None:
                        proc.kill()
                    proc.wait()

        sizes = sum(store.shard(s).size_bytes for s in store.shard_names())
        codec = store.shard(shards[0]).codec
        row = MetricRow(
            name,
            codec.family if name != "Adaptive" else "hybrid",
            "cluster",
            space_bytes=sizes,
        )
        row.intersect_ms = pct(hedged_ms, 0.99)
        row.extra = {
            "backends": n_backends,
            "replication": replication,
            "slow_backend": f"b{slow_idx}",
            "slow_shard_ms": slow_shard_ms,
            "baseline_p50_ms": pct(base_ms, 0.50),
            "baseline_p99_ms": pct(base_ms, 0.99),
            "baseline_statuses": dict(sorted(base_statuses.items())),
            "unhedged_p99_ms": pct(unhedged_ms, 0.99),
            "unhedged_statuses": dict(sorted(unhedged_statuses.items())),
            "hedged_p99_ms": pct(hedged_ms, 0.99),
            "hedged_statuses": dict(sorted(hedged_statuses.items())),
            "hedged": hedged_router.metrics.hedged,
            "hedge_wins": hedged_router.metrics.hedge_wins,
            "failover": {
                "killed_backend": f"b{fast_idx}",
                "kill_after_requests": kill_at,
                "p99_ms": pct(failover_ms, 0.99),
                "statuses": dict(sorted(failover_statuses.items())),
                "failovers": failover_router.metrics.failovers,
                "failed": failover_statuses.get("failed", 0)
                + failover_statuses.get("unavailable", 0),
            },
        }
        rows.append(row)
    return rows


#: Experiment registry for the CLI and the integration tests:
#: id → (function, metric columns to print).
EXPERIMENTS = {
    "fig3": (figure3, ("decompress_ms", "space_bytes")),
    "tab1": (table1, ("intersect_ms",)),
    "tab2": (table2, ("union_ms",)),
    "tab3": (table3, ("intersect_ms",)),
    "fig4": (figure4, ("intersect_ms", "space_bytes")),
    "fig5": (figure5, ("intersect_ms", "space_bytes")),
    "fig6": (figure6, ("intersect_ms", "union_ms", "space_bytes")),
    "fig7": (figure7, ("intersect_ms", "space_bytes")),
    "fig8": (figure8, ("intersect_ms", "space_bytes")),
    "fig9": (figure9, ("intersect_ms", "space_bytes")),
    "fig10": (figure10, ("intersect_ms", "space_bytes")),
    "fig11": (figure11, ("intersect_ms", "space_bytes")),
    "fig12": (figure12, ("intersect_ms", "space_bytes")),
    "served": (served, ("intersect_ms", "space_bytes")),
    "closed_loop": (closed_loop, ("intersect_ms", "space_bytes")),
    "churn": (churn, ("intersect_ms", "space_bytes")),
    "cluster": (cluster, ("intersect_ms", "space_bytes")),
}
