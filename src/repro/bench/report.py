"""Rendering of experiment results as paper-style tables.

The experiment functions return lists of :class:`~repro.bench.harness.
MetricRow`; this module pivots and prints them the way the paper lays out
its tables (codecs as rows in legend order, workloads as columns) and can
also dump raw CSV for downstream plotting.
"""

from __future__ import annotations

import io
from typing import Callable

from repro.bench.harness import MetricRow
from repro.core.registry import all_codec_names, history


def pivot(
    rows: list[MetricRow],
    value: str = "intersect_ms",
) -> tuple[list[str], list[str], dict[tuple[str, str], float]]:
    """(codecs, workloads, cell values) pivot of one metric."""
    codecs = [
        name
        for name in all_codec_names()
        if any(r.codec == name for r in rows)
    ]
    extra = [r.codec for r in rows if r.codec not in codecs]
    codecs += list(dict.fromkeys(extra))
    workloads = list(dict.fromkeys(r.workload for r in rows))
    cells = {(r.codec, r.workload): getattr(r, value) for r in rows}
    return codecs, workloads, cells


def format_table(
    rows: list[MetricRow],
    value: str = "intersect_ms",
    title: str = "",
    fmt: Callable[[float], str] | None = None,
) -> str:
    """Render one metric as an aligned text table."""
    if fmt is None:
        fmt = _default_format(value)
    codecs, workloads, cells = pivot(rows, value)
    name_width = max([len("codec")] + [len(c) for c in codecs])
    col_widths = [
        max(len(w), *(len(fmt(cells.get((c, w), float("nan")))) for c in codecs))
        for w in workloads
    ]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "codec".ljust(name_width) + "  " + "  ".join(
        w.rjust(cw) for w, cw in zip(workloads, col_widths)
    )
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for c in codecs:
        line = c.ljust(name_width) + "  " + "  ".join(
            fmt(cells.get((c, w), float("nan"))).rjust(cw)
            for w, cw in zip(workloads, col_widths)
        )
        out.write(line + "\n")
    return out.getvalue()


def _default_format(value: str) -> Callable[[float], str]:
    if value == "space_bytes":
        return format_bytes
    return format_ms


def format_ms(x: float) -> str:
    if x != x:  # NaN
        return "-"
    if x >= 100:
        return f"{x:.0f}"
    if x >= 1:
        return f"{x:.1f}"
    return f"{x:.3f}"


def format_bytes(x: float) -> str:
    if x != x:
        return "-"
    x = float(x)
    for unit in ("B", "KB", "MB", "GB"):
        if x < 1024 or unit == "GB":
            return f"{x:.1f}{unit}" if unit != "B" else f"{x:.0f}B"
        x /= 1024
    return f"{x:.1f}GB"  # pragma: no cover


def to_csv(rows: list[MetricRow]) -> str:
    """Raw CSV dump of every measurement."""
    keys: list[str] = []
    dicts = [r.as_dict() for r in rows]
    for d in dicts:
        for k in d:
            if k not in keys:
                keys.append(k)
    out = io.StringIO()
    out.write(",".join(keys) + "\n")
    for d in dicts:
        out.write(",".join(str(d.get(k, "")) for k in keys) + "\n")
    return out.getvalue()


_MARKERS = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def scatter_plot(
    rows: list[MetricRow],
    workload: str,
    x: str = "space_bytes",
    y: str = "intersect_ms",
    width: int = 64,
    height: int = 18,
) -> str:
    """ASCII time-vs-space scatter for one workload — the shape of the
    paper's Figures 4–12 panels (each codec is one labelled point;
    lower-left is better).

    Axes are log-scaled, matching how the paper's panels spread codecs
    that differ by orders of magnitude.
    """
    points = []
    for row in rows:
        if row.workload != workload:
            continue
        xv = getattr(row, x)
        yv = getattr(row, y)
        if xv != xv or yv != yv or xv <= 0 or yv <= 0:  # NaN / non-positive
            continue
        points.append((row.codec, float(xv), float(yv)))
    if not points:
        return f"(no data for workload {workload!r})\n"

    import math

    xs = [math.log10(p[1]) for p in points]
    ys = [math.log10(p[2]) for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (codec, xv, yv) in enumerate(points):
        marker = _MARKERS[idx % len(_MARKERS)]
        col = round((math.log10(xv) - x_lo) / x_span * (width - 1))
        line = round((math.log10(yv) - y_lo) / y_span * (height - 1))
        cell = grid[height - 1 - line][col]
        grid[height - 1 - line][col] = marker if cell == " " else "*"
        legend.append(
            f"  {marker} {codec:15s} {format_ms(yv):>8s} ms  "
            f"{format_bytes(xv):>9s}"
        )

    out = io.StringIO()
    out.write(f"{workload}: {_ms_label(y)} (log) vs space (log); * = overlap\n")
    for row_chars in grid:
        out.write("|" + "".join(row_chars) + "\n")
    out.write("+" + "-" * width + "\n")
    for entry in legend:
        out.write(entry + "\n")
    return out.getvalue()


def _ms_label(metric: str) -> str:
    return metric.replace("_ms", " time").replace("_", " ")


def history_table() -> str:
    """The Figure-1 timeline: year, family, codec."""
    out = io.StringIO()
    out.write("year  family   codec\n")
    out.write("--------------------\n")
    for year, family, name in history():
        out.write(f"{year}  {family:7s}  {name}\n")
    return out.getvalue()
