"""repro — a reproduction of *An Experimental Study of Bitmap Compression
vs. Inverted List Compression* (Wang, Lin, Papakonstantinou, Swanson;
SIGMOD 2017).

The library implements the paper's 9 bitmap compression codecs and 15
inverted-list compression codecs behind one interface
(:class:`repro.core.IntegerSetCodec`), the query operations the paper
measures (intersection via SvS with skip pointers, merge-based union,
boolean expression plans), the synthetic workload generators
(uniform / zipf / markov), simulators for the 8 real datasets, and a
benchmark harness that regenerates every table and figure of the
evaluation section.

Quickstart::

    import numpy as np
    from repro import get_codec

    postings = np.array([2, 5, 10, 100, 65536])
    roaring = get_codec("Roaring")
    cs = roaring.compress(postings)
    assert np.array_equal(roaring.decompress(cs), postings)
    print(cs.size_bytes, "bytes")
"""

from repro.core import (
    CompressedIntegerSet,
    IntegerSetCodec,
    ReproError,
    all_codec_names,
    bitmap_codec_names,
    get_codec,
    invlist_codec_names,
)

__version__ = "1.0.0"

__all__ = [
    "CompressedIntegerSet",
    "IntegerSetCodec",
    "ReproError",
    "get_codec",
    "all_codec_names",
    "bitmap_codec_names",
    "invlist_codec_names",
    "__version__",
]
