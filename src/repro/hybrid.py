"""Adaptive hybrid codec — the paper's lesson 1, implemented.

Section 7.2's first lesson is that neither family wins outright and
"both techniques can learn from each other to develop a better unified
compression method".  Its own guidelines give the decision procedure:

* space: inverted lists win below density n/d ≈ 1/5, bitmaps above
  (guideline 1);
* Roaring is the bitmap to use (lesson 3), SIMDPforDelta* /
  SIMDBP128* the lists to use (lesson 5).

:class:`AdaptiveCodec` applies exactly that rule per list: dense lists
are stored as Roaring bitmaps, sparse lists as SIMDPforDelta* blocks,
and every operation dispatches to the underlying representation —
mixed-representation operations fall back to the probe/merge paths both
sides expose.  The result tracks the better family's space at *every*
density (see ``tests/test_hybrid.py``) instead of losing one regime.

This is an extension beyond the paper's measured roster, so it is not
registered in the 24-codec registry.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.base import (
    Capability,
    CompressedIntegerSet,
    IntegerSetCodec,
    intersect_sorted_arrays,
    union_sorted_arrays,
)
from repro.core.registry import get_codec

#: The paper's density crossover (guideline 1 of Section 7.1).
DENSITY_THRESHOLD = 1 / 5


# Deliberately unregistered: Adaptive is a meta-codec that delegates to
# registry members, so enrolling it would double-count its inner codecs
# in every experiment sweep.
class AdaptiveCodec(IntegerSetCodec):  # repro: noqa[REPRO001]
    """Per-list representation choice driven by the paper's guidelines."""

    name = "Adaptive"
    family = "invlist"  # arbitrary; not registered
    year = 2017

    #: Only what holds across *both* inner representations regardless of
    #: where each set landed — compressed-output kernels would need both
    #: operands on the same inner codec, which the wrapper cannot promise,
    #: so they are deliberately not declared.
    CAPABILITIES = frozenset(
        {
            Capability.INTERSECT_WITH_ARRAY,
            Capability.RANK_SELECT_SKIP,
        }
    )

    def __init__(
        self,
        threshold: float = DENSITY_THRESHOLD,
        dense_codec: str = "Roaring",
        sparse_codec: str = "SIMDPforDelta*",
    ) -> None:
        self.threshold = threshold
        self.dense = get_codec(dense_codec)
        self.sparse = get_codec(sparse_codec)

    def params(self) -> dict[str, int | str]:
        return {
            "threshold": str(self.threshold),
            "dense": self.dense.name,
            "sparse": self.sparse.name,
        }

    # ------------------------------------------------------------------
    def compress(
        self, values: Iterable[int] | np.ndarray, universe: int | None = None
    ) -> CompressedIntegerSet:
        arr, universe = self._prepare(values, universe)
        density = arr.size / universe if universe else 0.0
        inner_codec = self.dense if density >= self.threshold else self.sparse
        inner = inner_codec.compress(arr, universe=universe)
        return CompressedIntegerSet(
            codec_name=self.name,
            payload=inner,
            n=inner.n,
            universe=universe,
            size_bytes=inner.size_bytes,
        )

    def _inner(self, cs: CompressedIntegerSet) -> tuple[IntegerSetCodec, CompressedIntegerSet]:
        inner: CompressedIntegerSet = cs.payload
        return get_codec(inner.codec_name), inner

    def representation(self, cs: CompressedIntegerSet) -> str:
        """Which underlying codec a set landed on (for inspection)."""
        return cs.payload.codec_name

    # ------------------------------------------------------------------
    def decompress(self, cs: CompressedIntegerSet) -> np.ndarray:
        codec, inner = self._inner(cs)
        return codec.decompress(inner)

    def intersect(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> np.ndarray:
        codec_a, inner_a = self._inner(a)
        codec_b, inner_b = self._inner(b)
        if codec_a is codec_b:
            return codec_a.intersect(inner_a, inner_b)
        # Mixed representations: probe the (denser) side with the sparser
        # side's values — both codecs expose sub-linear probe paths.
        if inner_a.n <= inner_b.n:
            probe = codec_a.decompress(inner_a)
            return codec_b.intersect_with_array(inner_b, probe)
        probe = codec_b.decompress(inner_b)
        return codec_a.intersect_with_array(inner_a, probe)

    def union(self, a: CompressedIntegerSet, b: CompressedIntegerSet) -> np.ndarray:
        codec_a, inner_a = self._inner(a)
        codec_b, inner_b = self._inner(b)
        if codec_a is codec_b:
            return codec_a.union(inner_a, inner_b)
        return union_sorted_arrays(
            codec_a.decompress(inner_a), codec_b.decompress(inner_b)
        )

    def intersect_with_array(
        self, cs: CompressedIntegerSet, values: np.ndarray
    ) -> np.ndarray:
        codec, inner = self._inner(cs)
        return codec.intersect_with_array(inner, values)

    def rank(self, cs: CompressedIntegerSet, value: int) -> int:
        codec, inner = self._inner(cs)
        return codec.rank(inner, value)

    def select(self, cs: CompressedIntegerSet, index: int) -> int:
        if index < 0 or index >= cs.n:
            raise IndexError(f"select index {index} out of range [0, {cs.n})")
        codec, inner = self._inner(cs)
        return codec.select(inner, index)

    def difference(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> np.ndarray:
        codec_a, inner_a = self._inner(a)
        codec_b, inner_b = self._inner(b)
        if codec_a is codec_b:
            return codec_a.difference(inner_a, inner_b)
        mine = codec_a.decompress(inner_a)
        common = codec_b.intersect_with_array(inner_b, mine)
        return np.setdiff1d(mine, common, assume_unique=True)

    def symmetric_difference(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> np.ndarray:
        codec_a, inner_a = self._inner(a)
        codec_b, inner_b = self._inner(b)
        if codec_a is codec_b:
            return codec_a.symmetric_difference(inner_a, inner_b)
        va = codec_a.decompress(inner_a)
        vb = codec_b.decompress(inner_b)
        common = intersect_sorted_arrays(va, vb)
        return np.setdiff1d(
            union_sorted_arrays(va, vb), common, assume_unique=True
        )
