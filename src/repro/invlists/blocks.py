"""Blocked inverted-list storage with skip pointers.

Per the paper (Section 3 overview and the Section 5 preamble): every
inverted-list codec except the uncompressed list partitions the d-gaps
into blocks of 128 elements and keeps one *skip pointer* per block — a
32-bit offset into the encoded stream plus the block's 32-bit start value
(8 bytes per block).  Skip pointers let the SvS intersection decode only
the blocks that can contain a probe value (Appendix B); Figure 7 measures
exactly this trade-off, which the ``skip_pointers`` switch reproduces.

:class:`BlockedInvListCodec` implements the whole pipeline; a concrete
codec only supplies ``_encode_block`` / ``_decode_block`` over one block's
residuals (d-gaps by default, or first-value offsets for codecs with
``block_relative = True`` such as SIMDBP128*).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Iterable

import numpy as np

from repro.core.arrays import gather_ranges as _gather_ranges
from repro.core.base import (
    Capability,
    CompressedIntegerSet,
    IntegerSetCodec,
    intersect_sorted_arrays,
    union_sorted_arrays,
)
from repro.invlists.dgaps import to_dgaps

#: The paper's block size (footnote 5: "several existing works suggest 128").
DEFAULT_BLOCK_SIZE = 128
#: Skip pointer cost: 32-bit offset + 32-bit start value.
SKIP_POINTER_BYTES = 8
#: Above this |longer| / |shorter| ratio, SvS probing beats merging; below
#: it, both lists are of "similar size" and we merge (paper footnote 8).
SVS_RATIO_THRESHOLD = 32


@dataclass(frozen=True)
class BlockedPayload:
    """Encoded stream plus per-block skip metadata.

    The ``offsets``/``firsts`` arrays exist even when skip pointers are
    disabled (decoding a block needs them) — but then they are neither
    *used* for probing nor *counted* in the wire size, which is what the
    paper's "no skip pointers" configuration means.
    """

    stream: np.ndarray  # codec-specific dtype
    offsets: np.ndarray  # int64 start index into `stream` per block
    firsts: np.ndarray  # int64 first value of each block
    wire_bytes: int  # logical encoded size excluding skip pointers


class BlockedInvListCodec(IntegerSetCodec):
    """Base class for the blocked, skip-pointered inverted-list codecs."""

    family: ClassVar[str] = "invlist"
    #: dtype of the encoded stream (uint8 for byte codecs, uint32/uint64
    #: for word codecs).
    stream_dtype: ClassVar[type] = np.uint32
    #: When True, blocks encode ``value - block_first`` offsets instead of
    #: d-gaps (no prefix sum at decode; see SIMDBP128*).
    block_relative: ClassVar[bool] = False

    #: Class-level declaration; instances built with
    #: ``skip_pointers=False`` drop :attr:`Capability.INTERSECT_WITH_ARRAY`
    #: via :meth:`capabilities` (the probe then degrades to a full decode,
    #: Figure 7's baseline, which must not be advertised as sub-linear).
    CAPABILITIES: ClassVar[frozenset[Capability]] = frozenset(
        {
            Capability.INTERSECT_WITH_ARRAY,
            Capability.RANK_SELECT_SKIP,
        }
    )

    def __init__(
        self,
        block_size: int = DEFAULT_BLOCK_SIZE,
        skip_pointers: bool = True,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.block_size = block_size
        self.skip_pointers = skip_pointers

    def params(self) -> dict[str, int | str]:
        return {
            "block_size": self.block_size,
            "skip_pointers": int(self.skip_pointers),
        }

    def capabilities(self) -> frozenset[Capability]:
        """Instance-level view: without skip pointers the sub-linear
        probe is gone, so INTERSECT_WITH_ARRAY is not advertised
        (rank/select still work — the block offsets always exist, they
        are just not counted in the wire size)."""
        if self.skip_pointers:
            return self.CAPABILITIES
        return self.CAPABILITIES - {Capability.INTERSECT_WITH_ARRAY}

    # ------------------------------------------------------------------
    # Codec-specific hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        """Encode one block of residuals.

        Returns ``(stream_chunk, wire_bytes)`` — the chunk in
        ``stream_dtype`` plus the block's logical size in bytes (which may
        be smaller than ``stream_chunk.nbytes`` when the numpy
        representation pads, e.g. a bit-width byte stored in a full word).
        """

    @abc.abstractmethod
    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        """Decode *count* residuals of the block starting at *offset*."""

    # ------------------------------------------------------------------
    # Compression
    # ------------------------------------------------------------------
    def compress(
        self, values: Iterable[int] | np.ndarray, universe: int | None = None
    ) -> CompressedIntegerSet:
        arr, universe = self._prepare(values, universe)
        bs = self.block_size
        n = int(arr.size)
        n_blocks = (n + bs - 1) // bs
        chunks: list[np.ndarray] = []
        offsets = np.zeros(n_blocks, dtype=np.int64)
        firsts = np.zeros(n_blocks, dtype=np.int64)
        wire_bytes = 0
        pos = 0
        residual_source = arr if self.block_relative else to_dgaps(arr)
        for k in range(n_blocks):
            lo, hi = k * bs, min((k + 1) * bs, n)
            firsts[k] = arr[lo]
            offsets[k] = pos
            block = residual_source[lo:hi]
            if self.block_relative:
                block = block - arr[lo]
            chunk, nbytes = self._encode_block(block)
            chunks.append(chunk)
            pos += int(chunk.size)
            wire_bytes += nbytes
        stream = (
            np.concatenate(chunks)
            if chunks
            else np.empty(0, dtype=self.stream_dtype)
        )
        payload = BlockedPayload(stream, offsets, firsts, wire_bytes)
        size = wire_bytes + (SKIP_POINTER_BYTES * n_blocks if self.skip_pointers else 0)
        return CompressedIntegerSet(self.name, payload, n, universe, size)

    # ------------------------------------------------------------------
    # Decompression
    # ------------------------------------------------------------------
    def decompress(self, cs: CompressedIntegerSet) -> np.ndarray:
        payload: BlockedPayload = cs.payload
        n = cs.n
        if n == 0:
            return np.empty(0, dtype=np.int64)
        residuals = self._decode_all(payload, n)
        if self.block_relative:
            return residuals + np.repeat(
                payload.firsts, self._block_counts(n)
            )
        return np.cumsum(residuals, dtype=np.int64)

    def _decode_all(self, payload: BlockedPayload, n: int) -> np.ndarray:
        """All residuals of the list, in order.

        Default: block-by-block loop.  Codecs override this with batched
        whole-list decoders (many blocks decoded in one vectorised pass),
        which is the analogue of the C++ implementations' tight decode
        loops — without it, per-block interpreter overhead would swamp
        the codec differences the paper measures.
        """
        bs = self.block_size
        parts = []
        for k in range(payload.offsets.size):
            count = min(bs, n - k * bs)
            parts.append(
                self._decode_block(payload.stream, int(payload.offsets[k]), count)
            )
        return np.concatenate(parts)

    def _block_counts(self, n: int) -> np.ndarray:
        bs = self.block_size
        n_blocks = (n + bs - 1) // bs
        counts = np.full(n_blocks, bs, dtype=np.int64)
        if n % bs:
            counts[-1] = n % bs
        return counts

    def _decode_one_block(
        self, cs: CompressedIntegerSet, k: int
    ) -> np.ndarray:
        """Absolute values of block *k*, decoded in isolation via its skip
        pointer's start value."""
        payload: BlockedPayload = cs.payload
        bs = self.block_size
        count = min(bs, cs.n - k * bs)
        residuals = self._decode_block(
            payload.stream, int(payload.offsets[k]), count
        )
        first = int(payload.firsts[k])
        if self.block_relative:
            return residuals + first
        # Chain gaps within the block; the first gap is replaced by the
        # skip pointer's start value.
        out = np.cumsum(residuals, dtype=np.int64)
        return out - int(residuals[0]) + first

    # ------------------------------------------------------------------
    # Query operations
    # ------------------------------------------------------------------
    def intersect(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> np.ndarray:
        """SvS when sizes differ enough to make skipping pay, else merge
        (the paper's footnote-8 strategy)."""
        short, long_ = (a, b) if a.n <= b.n else (b, a)
        if short.n == 0:
            return np.empty(0, dtype=np.int64)
        if long_.n < short.n * SVS_RATIO_THRESHOLD or not self.skip_pointers:
            return intersect_sorted_arrays(
                self.decompress(short), self.decompress(long_)
            )
        return self.intersect_with_array(long_, self.decompress(short))

    def intersect_with_array(
        self, cs: CompressedIntegerSet, values: np.ndarray
    ) -> np.ndarray:
        """Probe sorted *values* against the compressed list.

        With skip pointers only the candidate blocks are decoded (all of
        them in one batched pass); without skip pointers the whole list
        must be decompressed first (Figure 7's baseline).
        """
        if values.size == 0 or cs.n == 0:
            return np.empty(0, dtype=np.int64)
        if not self.skip_pointers:
            return intersect_sorted_arrays(self.decompress(cs), values)
        payload: BlockedPayload = cs.payload
        blk = np.searchsorted(payload.firsts, values, side="right") - 1
        blk = blk[blk >= 0]
        if blk.size == 0:
            return np.empty(0, dtype=np.int64)
        needed = np.unique(blk)
        block_values = self._decode_blocks(cs, needed)
        return intersect_sorted_arrays(block_values, values)

    def _decode_blocks(
        self, cs: CompressedIntegerSet, block_ids: np.ndarray
    ) -> np.ndarray:
        """Absolute values of the given (sorted) block ids, decoded via
        one batched pass over a gathered sub-stream.

        Works because every block's encoding is self-contained: the
        blocks' stream ranges are gathered into a contiguous sub-stream
        with recomputed offsets, fed to the codec's ``_decode_all``, and
        re-based on the skip pointers' start values.
        """
        payload: BlockedPayload = cs.payload
        bs = self.block_size
        n_blocks = payload.offsets.size
        if block_ids.size == n_blocks:
            return self.decompress(cs)
        ends = np.append(payload.offsets[1:], payload.stream.size)
        lengths = ends[block_ids] - payload.offsets[block_ids]
        stream = payload.stream[
            _gather_ranges(payload.offsets[block_ids], lengths)
        ]
        sub_offsets = np.cumsum(lengths) - lengths
        firsts = payload.firsts[block_ids]
        last_global = n_blocks - 1
        if block_ids[-1] == last_global:
            last_count = cs.n - last_global * bs
        else:
            last_count = bs
        n_sub = (block_ids.size - 1) * bs + last_count
        sub_payload = BlockedPayload(stream, sub_offsets, firsts, 0)
        residuals = self._decode_all(sub_payload, n_sub)
        counts = np.full(block_ids.size, bs, dtype=np.int64)
        counts[-1] = last_count
        if self.block_relative:
            return residuals + np.repeat(firsts, counts)
        # Segmented prefix sum, re-based on each block's start value.
        cum = np.cumsum(residuals, dtype=np.int64)
        seg_start = np.cumsum(counts) - counts
        base = firsts - cum[seg_start]
        return cum + np.repeat(base, counts)

    def union(self, a: CompressedIntegerSet, b: CompressedIntegerSet) -> np.ndarray:
        """Decompress-then-merge, per the paper's union implementation."""
        return union_sorted_arrays(self.decompress(a), self.decompress(b))

    # ------------------------------------------------------------------
    # Positional access (library extension; sub-linear via skip pointers)
    # ------------------------------------------------------------------
    def rank(self, cs: CompressedIntegerSet, value: int) -> int:
        """Elements ≤ *value*: locate the block by skip pointer, decode it
        alone, and binary-search inside."""
        if cs.n == 0:
            return 0
        payload: BlockedPayload = cs.payload
        k = int(np.searchsorted(payload.firsts, value, side="right")) - 1
        if k < 0:
            return 0
        block_vals = self._decode_one_block(cs, k)
        within = int(np.searchsorted(block_vals, value, side="right"))
        return k * self.block_size + within

    def select(self, cs: CompressedIntegerSet, index: int) -> int:
        """The *index*-th element: exactly one block decode."""
        if index < 0 or index >= cs.n:
            raise IndexError(f"select index {index} out of range [0, {cs.n})")
        k, within = divmod(index, self.block_size)
        return int(self._decode_one_block(cs, k)[within])
