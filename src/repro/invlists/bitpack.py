"""Fixed-width bit packing kernels.

Packs ``n`` non-negative integers, each known to fit in ``b`` bits, into a
dense little-endian bit stream stored as 32-bit words — the storage layout
shared by the PforDelta family and the binary-packing (BP128) family.

Two *unpack* kernels are provided on purpose:

* :func:`unpack_bits_scalar` reconstructs each value bit by bit (a boolean
  bit-matrix reduction).  It does asymptotically ``n * b`` bit operations,
  mirroring the work profile of a scalar (non-SIMD) C decoder.
* :func:`unpack_bits_simd` gathers each value with one shift-and-mask over
  a 64-bit window, doing ``O(n)`` whole-word operations.  This is the
  library's stand-in for the paper's 128-bit SIMD decoders (SIMDPforDelta,
  SIMDBP128): NumPy's batched word operations play the role of SIMD lanes.

The two kernels produce identical results; codecs pick one to match the
algorithm they reproduce, so the scalar/SIMD performance gap the paper
measures has a faithful analogue here.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import CorruptPayloadError, DomainOverflowError

_U32_MASK = np.uint64(0xFFFFFFFF)

#: Bits per stream word — the PforDelta/BP128 families store their packed
#: payloads as little-endian 32-bit words (paper Sections 3.4–3.6).
WORD_BITS = 32


def packed_word_count(count: int, b: int) -> int:
    """Stream words needed to hold *count* values of *b* bits each."""
    return (count * b + WORD_BITS - 1) // WORD_BITS


def required_bits(values: np.ndarray) -> int:
    """Smallest b (≥ 1) such that every value fits in b bits."""
    if values.size == 0:
        return 1
    top = int(values.max())
    if top < 0:
        raise DomainOverflowError("cannot bit-pack negative values")
    return max(1, top.bit_length())


def pack_bits(values: np.ndarray, b: int) -> np.ndarray:
    """Pack *values* (each < 2^b) into a little-endian uint32 word array.

    Value ``i`` occupies bit positions ``i*b .. i*b + b - 1`` of the
    stream; bit ``k`` of the stream lives in word ``k // 32`` at in-word
    position ``k % 32``.
    """
    if b < 1 or b > 32:
        raise ValueError(f"bit width must be in 1..32, got {b}")
    n = int(values.size)
    if n == 0:
        return np.empty(0, dtype=np.uint32)
    v = values.astype(np.uint64, copy=False)
    if b < 32 and int(v.max()) >> b:
        raise DomainOverflowError(
            f"value {int(v.max())} does not fit in {b} bits"
        )
    n_words = packed_word_count(n, b)
    # Accumulate into 64-bit words so a value straddling a 32-bit boundary
    # lands in one scatter each for its low and high halves.
    out = np.zeros(n_words + 1, dtype=np.uint64)
    start = np.arange(n, dtype=np.int64) * b
    widx = start >> 5
    off = (start & 31).astype(np.uint64)
    np.bitwise_or.at(out, widx, (v << off) & _U32_MASK)
    # Bits that straddle into the next word (never set when off == 0).
    spill = (v << off) >> np.uint64(32)
    np.bitwise_or.at(out, widx + 1, spill)
    return (out & _U32_MASK).astype(np.uint32)[:n_words]


def _check_stream_length(n_words: int, n: int, b: int) -> None:
    """Reject streams too short to hold *n* b-bit values.

    Both unpack kernels share this guard so a truncated stream raises the
    same :class:`CorruptPayloadError` on either path instead of the SIMD
    windowing silently reading zero-padding as data.
    """
    needed = packed_word_count(n, b)
    if n_words < needed:
        raise CorruptPayloadError(
            f"packed stream truncated: {n} values of {b} bits need "
            f"{needed} words, got {n_words}"
        )


def unpack_bits_simd(words: np.ndarray, n: int, b: int) -> np.ndarray:
    """Unpack *n* b-bit values with O(n) shift-and-mask gathers.

    The vectorised fast path — see the module docstring for why this is
    the SIMD analogue.
    """
    if n == 0:
        return np.empty(0, dtype=np.int64)
    _check_stream_length(words.size, n, b)
    w = words.astype(np.uint64, copy=False)
    # 64-bit sliding windows: window i = words[i] | words[i+1] << 32.
    ext = np.zeros(w.size + 1, dtype=np.uint64)
    ext[: w.size] = w
    windows = ext[:-1] | (ext[1:] << np.uint64(32))
    start = np.arange(n, dtype=np.int64) * b
    widx = start >> 5
    off = (start & 31).astype(np.uint64)
    mask = np.uint64((1 << b) - 1) if b < 64 else ~np.uint64(0)
    return ((windows[widx] >> off) & mask).astype(np.int64)


def unpack_bits_simd_blocks(words2d: np.ndarray, count: int, b: int) -> np.ndarray:
    """Row-wise :func:`unpack_bits_simd`: (m, w) words → (m, count) values.

    Used by the batched decompression paths: many blocks that share a bit
    width are unpacked in one vectorised pass.
    """
    m = words2d.shape[0]
    if m == 0 or count == 0:
        return np.empty((m, count), dtype=np.int64)
    _check_stream_length(words2d.shape[1], count, b)
    w = words2d.astype(np.uint64, copy=False)
    ext = np.zeros((m, w.shape[1] + 1), dtype=np.uint64)
    ext[:, :-1] = w
    windows = ext[:, :-1] | (ext[:, 1:] << np.uint64(32))
    start = np.arange(count, dtype=np.int64) * b
    widx = start >> 5
    off = (start & 31).astype(np.uint64)
    mask = np.uint64((1 << b) - 1) if b < 64 else ~np.uint64(0)
    return ((windows[:, widx] >> off) & mask).astype(np.int64)


def unpack_bits_scalar_blocks(words2d: np.ndarray, count: int, b: int) -> np.ndarray:
    """Row-wise :func:`unpack_bits_scalar`: per-bit reconstruction."""
    m = words2d.shape[0]
    if m == 0 or count == 0:
        return np.empty((m, count), dtype=np.int64)
    _check_stream_length(words2d.shape[1], count, b)
    # The uint8 reinterpretation below needs contiguous rows; strided
    # views (e.g. a column slice of a larger matrix) are copied first so
    # both kernels accept the same inputs.
    bytes2d = np.ascontiguousarray(words2d).view(np.uint8).reshape(m, -1)
    bits = np.unpackbits(bytes2d, axis=1, bitorder="little")[:, : count * b]
    powers = np.int64(1) << np.arange(b, dtype=np.int64)
    return bits.reshape(m, count, b).astype(np.int64) @ powers


def unpack_bits_scalar(words: np.ndarray, n: int, b: int) -> np.ndarray:
    """Unpack *n* b-bit values via an explicit per-bit reconstruction.

    Touches every bit individually (n*b boolean operations), mirroring a
    scalar decoder's work profile; used by the non-SIMD codecs.
    """
    if n == 0:
        return np.empty(0, dtype=np.int64)
    _check_stream_length(words.size, n, b)
    bits = np.unpackbits(
        np.ascontiguousarray(words).view(np.uint8), count=n * b, bitorder="little"
    )
    powers = (np.int64(1) << np.arange(b, dtype=np.int64))
    return bits.reshape(n, b).astype(np.int64) @ powers
