"""NewPforDelta (Yan, Ding, Suel, 2009; paper Section 3.4).

PforDelta wastes space when exceptions are far apart, because the slot
linked list needs forced exceptions.  NewPforDelta removes the chain
entirely: an exception's slot keeps the **low b bits** of its value, and
two side arrays store (a) the exception positions and (b) the overflow
high bits, both compressed (here with VB — the original used Simple16;
VB is used so arbitrary 32-bit overflows remain encodable).

Block wire layout (32-bit words):
``[header0][header1][packed slots][VB positions | VB highs, byte-packed]``
where header0 = ``b | n_exceptions << 8`` and header1 =
``pos_bytes | high_bytes << 16``.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import register_codec
from repro.invlists.bitpack import (
    pack_bits,
    packed_word_count,
    unpack_bits_scalar,
    unpack_bits_scalar_blocks,
)
from repro.invlists.blocks import BlockedInvListCodec
from repro.invlists.pfordelta import choose_b_90
from repro.invlists.vb import vb_decode_array, vb_encode_array


def encode_newpfor_block(values: np.ndarray, b: int) -> tuple[np.ndarray, int]:
    """Encode one block at width *b*.

    Returns ``(words, wire_bytes)``; wire bytes count the two headers, the
    packed slots, and the actual VB bytes (the word stream pads the VB
    section to a whole number of 32-bit words).
    """
    limit = 1 << b
    exc_pos = np.flatnonzero(values >= limit)
    slots = values & (limit - 1)
    highs = values[exc_pos] >> b
    pos_deltas = np.diff(exc_pos, prepend=0) if exc_pos.size else exc_pos
    pos_bytes = vb_encode_array(pos_deltas)
    high_bytes = vb_encode_array(highs)
    side = np.concatenate((pos_bytes, high_bytes))
    pad = (-side.size) % 4
    if pad:
        side = np.concatenate((side, np.zeros(pad, dtype=np.uint8)))
    side_words = side.view(np.uint32) if side.size else np.empty(0, np.uint32)
    header0 = np.uint32(b | (exc_pos.size << 8))
    header1 = np.uint32(pos_bytes.size | (high_bytes.size << 16))
    packed = pack_bits(slots, b)
    words = np.concatenate(
        (np.array([header0, header1], dtype=np.uint32), packed, side_words)
    )
    wire = 8 + packed.nbytes + int(pos_bytes.size) + int(high_bytes.size)
    return words, wire


def decode_newpfor_block(
    stream: np.ndarray, offset: int, count: int, unpack
) -> np.ndarray:
    header0 = int(stream[offset])
    header1 = int(stream[offset + 1])
    b = header0 & 0xFF
    n_exc = header0 >> 8
    pos_bytes = header1 & 0xFFFF
    high_bytes = header1 >> 16
    n_words = packed_word_count(count, b)
    slots_start = offset + 2
    values = unpack(stream[slots_start : slots_start + n_words], count, b)
    if n_exc:
        side_words = (pos_bytes + high_bytes + 3) // 4
        side = stream[
            slots_start + n_words : slots_start + n_words + side_words
        ].view(np.uint8)
        pos_deltas, end = vb_decode_array(side, n_exc, 0)
        highs, _ = vb_decode_array(side, n_exc, pos_bytes)
        positions = np.cumsum(pos_deltas)
        values[positions] |= highs << b
    return values


@register_codec
class NewPforDeltaCodec(BlockedInvListCodec):
    """NewPforDelta: low-bits slots + two compressed side arrays."""

    name = "NewPforDelta"
    year = 2009
    stream_dtype = np.uint32
    _unpack = staticmethod(unpack_bits_scalar)

    def _choose_b(self, values: np.ndarray) -> int:
        return choose_b_90(values)

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        return encode_newpfor_block(residuals, self._choose_b(residuals))

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        return decode_newpfor_block(stream, offset, count, self._unpack)

    def _decode_all(self, payload, n: int) -> np.ndarray:
        """Batched whole-list decode: slots of same-width full blocks are
        unpacked together; the VB side arrays are then applied per block
        (only blocks that actually have exceptions)."""
        bs = self.block_size
        stream = payload.stream
        offsets = payload.offsets
        nb = offsets.size
        header0 = stream[offsets].astype(np.int64)
        header1 = stream[offsets + 1].astype(np.int64)
        b_arr = header0 & 0xFF
        n_exc = header0 >> 8
        pos_bytes = header1 & 0xFFFF
        out = np.empty(n, dtype=np.int64)
        full = np.ones(nb, dtype=bool)
        if n % bs:
            full[-1] = False
        for b in np.unique(b_arr[full]):
            idx = np.flatnonzero(full & (b_arr == b))
            w = packed_word_count(bs, int(b))
            mat = stream[offsets[idx][:, None] + 2 + np.arange(w)]
            vals = unpack_bits_scalar_blocks(mat, bs, int(b))
            dest = (idx[:, None] * bs + np.arange(bs)).reshape(-1)
            out[dest] = vals.reshape(-1)
        if not full[-1]:
            k = nb - 1
            out[k * bs :] = self._decode_block(
                stream, int(offsets[k]), n - k * bs
            )
        # Batched exception patch: every block's VB side segments are
        # gathered into two concatenated streams and decoded in one pass
        # each (segments align on value boundaries), then a segmented
        # prefix sum rebuilds the per-block exception positions.
        exc_blocks = np.flatnonzero((n_exc > 0) & full)
        if exc_blocks.size:
            sbytes = stream.view(np.uint8)
            w_arr = packed_word_count(bs, b_arr[exc_blocks])
            side_byte_start = (offsets[exc_blocks] + 2 + w_arr) * 4
            pos_lens = pos_bytes[exc_blocks]
            high_lens = (header1[exc_blocks] >> 16).astype(np.int64)
            pos_concat = sbytes[_gather_ranges(side_byte_start, pos_lens)]
            high_concat = sbytes[
                _gather_ranges(side_byte_start + pos_lens, high_lens)
            ]
            total = int(n_exc[exc_blocks].sum())
            deltas, _ = vb_decode_array(pos_concat, total, 0)
            highs, _ = vb_decode_array(high_concat, total, 0)
            seg_counts = n_exc[exc_blocks]
            seg = np.repeat(np.arange(exc_blocks.size), seg_counts)
            cum = np.cumsum(deltas)
            seg_first = np.cumsum(seg_counts) - seg_counts
            seg_base = cum[seg_first] - deltas[seg_first]
            within = cum - seg_base[seg]
            dest = exc_blocks[seg] * bs + within
            out[dest] |= highs << b_arr[exc_blocks][seg]
        return out


def _gather_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Flat indices covering [starts[i], starts[i] + lengths[i]) per i."""
    total = int(lengths.sum())
    ramp = np.arange(total, dtype=np.int64)
    seg_start = np.cumsum(lengths) - lengths
    return np.repeat(starts, lengths) + (ramp - np.repeat(seg_start, lengths))
