"""GroupVB — Group Varint Encoding (Dean / Google, 2009).

Paper Section 3.2.  Four d-gaps are encoded together: a header byte holds
four 2-bit length descriptors (value i uses ``1 + descriptor`` bytes,
little-endian), followed by the four values' data bytes.  Factoring the
flags out of the data stream removes the per-byte branch that slows VB
down — the property that makes GroupVB's decompression "much better than
PforDelta" in the paper's Figure 3.

Layout note: within each 128-gap block all of the block's header bytes are
stored first, then all data bytes.  The byte count is identical to the
classic interleaved layout (one header byte per 4 values); keeping the
headers contiguous is what lets the decoder compute every value's data
offset in one vectorised pass — the same "decompress multiple integers
simultaneously" effect the paper attributes to the factored flags.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import CorruptPayloadError, DomainOverflowError
from repro.core.registry import register_codec
from repro.invlists.blocks import BlockedInvListCodec

_LEN_THRESHOLDS = (1 << 8, 1 << 16, 1 << 24)

# Per-tag length LUT: row ``t`` holds the four 2-bit descriptors of header
# byte ``t`` (value i uses ``1 + desc`` bytes), so decoding a header run is
# one gather instead of four strided shift/mask passes.
_TAG_DESC = (
    (np.arange(256, dtype=np.int64)[:, None] >> np.array([0, 2, 4, 6])) & 3
)
_TAG_LENS = _TAG_DESC + 1
_TAG_TOTAL = _TAG_LENS.sum(axis=1)


@register_codec
class GroupVBCodec(BlockedInvListCodec):
    """Group Varint with per-block factored header bytes."""

    name = "GroupVB"
    year = 2009
    stream_dtype = np.uint8

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        v = residuals.astype(np.int64, copy=False)
        n = int(v.size)
        n_groups = (n + 3) // 4
        padded = np.zeros(n_groups * 4, dtype=np.int64)
        padded[:n] = v
        if n and int(v.max()) >> 32:
            raise DomainOverflowError(
                f"GroupVB gap {int(v.max())} exceeds 32 bits"
            )
        # Length descriptor per value: bytes - 1, in 0..3.
        desc = np.zeros(padded.size, dtype=np.int64)
        for t in _LEN_THRESHOLDS:
            desc += padded >= t
        lens = desc + 1
        # Header byte per group of four: descriptors in bit pairs 0,2,4,6.
        d = desc.reshape(n_groups, 4)
        headers = (d[:, 0] | (d[:, 1] << 2) | (d[:, 2] << 4) | (d[:, 3] << 6)).astype(
            np.uint8
        )
        # Data bytes, little-endian per value, concatenated in value order.
        starts = np.cumsum(lens) - lens
        data = np.zeros(int(lens.sum()), dtype=np.uint8)
        for k in range(4):
            mask = lens > k
            if not mask.any():
                break
            data[starts[mask] + k] = (padded[mask] >> (8 * k)) & 0xFF
        chunk = np.concatenate((headers, data))
        return chunk, int(chunk.nbytes)

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        n_groups = (count + 3) // 4
        headers = stream[offset : offset + n_groups]
        if headers.size < n_groups:
            raise CorruptPayloadError("GroupVB block header truncated")
        lens = _TAG_LENS[headers].reshape(-1)
        starts = np.cumsum(lens) - lens
        total = int(_TAG_TOTAL[headers].sum())
        data_start = offset + n_groups
        data = stream[data_start : data_start + total].astype(np.int64)
        if data.size < total:
            raise CorruptPayloadError("GroupVB block data truncated")
        values = np.zeros(n_groups * 4, dtype=np.int64)
        for k in range(4):
            mask = lens > k
            if not mask.any():
                break
            values[mask] |= data[starts[mask] + k] << (8 * k)
        return values[:count]

    def _decode_all(self, payload, n: int) -> np.ndarray:
        """Batched whole-list decode.

        Full blocks all have the same header-block shape, so their
        descriptors, per-value byte offsets, and data gathers are plain
        2-D array operations; only a partial trailing block falls back to
        the single-block decoder.
        """
        bs = self.block_size
        stream = payload.stream.astype(np.int64, copy=False)
        offsets = payload.offsets
        nb = offsets.size
        nb_full = nb if n % bs == 0 else nb - 1
        groups_per_block = bs // 4
        parts = []
        if nb_full:
            off = offsets[:nb_full, None]
            headers = stream[off + np.arange(groups_per_block)]
            lens = _TAG_LENS[headers].reshape(nb_full, bs)
            within = np.cumsum(lens, axis=1) - lens
            data_start = off + groups_per_block + within
            values = stream[data_start]  # first byte of every value
            for k in range(1, 4):
                mask = lens > k
                if not mask.any():
                    break
                values[mask] |= stream[data_start[mask] + k] << (8 * k)
            parts.append(values.reshape(-1))
        if nb_full < nb:
            k = nb - 1
            parts.append(
                self._decode_block(payload.stream, int(offsets[k]), n - k * bs)
            )
        return parts[0] if len(parts) == 1 else np.concatenate(parts)
