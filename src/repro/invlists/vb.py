"""VB — Variable Byte encoding (Cutting & Pedersen, 1990).

Paper Section 3.1.  Each d-gap is stored in 1–5 bytes, little-endian
7-bit groups; the byte's most significant bit is a continuation flag
(1 = more bytes belong to this integer).  E.g. 16385 encodes as
``10000001 10000000 00000001``, matching the paper's worked example.

Both the encoder and the block decoder are expressed as whole-array NumPy
passes — VB is byte-aligned, which is exactly why the paper finds it
surprisingly competitive ("the advantage of VB comes from byte accesses
instead of bit accesses", finding (5) of Section 5.2).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import CorruptPayloadError
from repro.core.registry import register_codec
from repro.invlists.blocks import BlockedInvListCodec

_THRESHOLDS = (1 << 7, 1 << 14, 1 << 21, 1 << 28)


def vb_encode_array(values: np.ndarray) -> np.ndarray:
    """Encode an int64 array (< 2^35 each) into a VB byte stream."""
    if values.size == 0:
        return np.empty(0, dtype=np.uint8)
    v = values.astype(np.int64, copy=False)
    nbytes = np.ones(v.size, dtype=np.int64)
    for t in _THRESHOLDS:
        nbytes += v >= t
    starts = np.cumsum(nbytes) - nbytes
    out = np.zeros(int(nbytes.sum()), dtype=np.uint8)
    for k in range(5):
        mask = nbytes > k
        if not mask.any():
            break
        chunk = (v[mask] >> (7 * k)) & 0x7F
        cont = np.where(nbytes[mask] > k + 1, 0x80, 0)
        out[starts[mask] + k] = chunk | cont
    return out


def vb_decode_array(data: np.ndarray, count: int, offset: int = 0) -> tuple[np.ndarray, int]:
    """Decode *count* VB integers from *data* starting at *offset*.

    Returns ``(values, end_offset)``.
    """
    if count == 0:
        return np.empty(0, dtype=np.int64), offset
    # A VB value is at most 5 bytes, so the scan window is bounded — this
    # keeps block decoding O(block) instead of O(rest of stream).
    view = data[offset : offset + 5 * count]
    terminators = np.flatnonzero(view < 0x80)
    if terminators.size < count:
        raise CorruptPayloadError("VB stream ends before expected value count")
    end = int(terminators[count - 1]) + 1
    chunk = view[:end].astype(np.int64)
    term = chunk < 0x80
    value_starts = np.concatenate(([0], np.flatnonzero(term)[:-1] + 1))
    lens = np.diff(np.append(value_starts, end))
    byte_pos = np.arange(end, dtype=np.int64) - np.repeat(value_starts, lens)
    contributions = (chunk & 0x7F) << (7 * byte_pos)
    values = np.add.reduceat(contributions, value_starts)
    return values, offset + end


@register_codec
class VBCodec(BlockedInvListCodec):
    """Variable Byte over 128-gap blocks with skip pointers."""

    name = "VB"
    year = 1990
    stream_dtype = np.uint8

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        chunk = vb_encode_array(residuals)
        return chunk, int(chunk.nbytes)

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        values, _ = vb_decode_array(stream, count, offset)
        return values

    def _decode_all(self, payload, n: int) -> np.ndarray:
        # Blocks are contiguous in the byte stream, so the whole list
        # decodes in one vectorised pass.
        values, _ = vb_decode_array(payload.stream, n, 0)
        return values
