"""PEF — Partitioned Elias-Fano (Ottaviano & Venturini, 2014; paper
Section 3.9).

Unlike the rest of the inverted-list family, PEF does not delta-code.
Each partition stores its values ``v_i`` as residuals ``r_i = v_i - base``
split into

* a **low-bit array** — the low ``b = floor(log2(U / n))`` bits of every
  residual, bit-packed contiguously, and
* a **high-bit array** — the remaining high parts ``h_i = r_i >> b`` as a
  unary-coded negated-gap bitvector: bit ``i + h_i`` is set, everything
  else is 0.

Decompression must touch **every bit** of the high array (the reason the
paper finds PEF the slowest decoder, finding (12) of Section 5.1), while
an intersection probe only inspects the high array plus the handful of
low-bit slots whose high part matches — PEF "does not need to decompress
a whole block for intersection" (Section 5.2), reproduced here by the
partial-access probe in :meth:`PEFCodec.intersect_with_array`.

Simplification: partitions are fixed at the library's standard block size
(128) rather than chosen by the original's dynamic program; the
per-partition base/parameter adaptation — the property driving the
paper's measurements — is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import CompressedIntegerSet, intersect_sorted_arrays
from repro.core.errors import CorruptPayloadError
from repro.core.registry import register_codec
from repro.invlists.bitpack import pack_bits, unpack_bits_scalar
from repro.invlists.blocks import BlockedInvListCodec, BlockedPayload

_B_BITS = 6
_B_MASK = (1 << _B_BITS) - 1


def ef_low_bits(universe_span: int, n: int) -> int:
    """The Elias-Fano low-bit width: floor(log2(U / n)), at least 0."""
    if n <= 0 or universe_span <= n:
        return 0
    return (universe_span // n).bit_length() - 1


def encode_ef_block(residuals: np.ndarray) -> tuple[np.ndarray, int]:
    """Encode residuals (sorted, starting at 0) into one EF partition.

    Returns ``(words, wire_bytes)``; layout is
    ``[header][packed lows][packed high bitvector]`` with the header
    storing ``b`` in its low 6 bits and the high-array bit length above.
    """
    n = int(residuals.size)
    span = int(residuals[-1]) + 1 if n else 1
    b = ef_low_bits(span, n)
    if b:
        lows = residuals & ((1 << b) - 1)
        low_words = pack_bits(lows, b)
    else:
        low_words = np.empty(0, dtype=np.uint32)
    highs = residuals >> b
    high_len = n + int(highs[-1]) + 1 if n else 0
    high_bits = np.zeros(high_len, dtype=np.uint8)
    high_bits[highs + np.arange(n, dtype=np.int64)] = 1
    packed_high = np.packbits(high_bits, bitorder="little")
    pad = (-packed_high.size) % 4
    if pad:
        packed_high = np.concatenate(
            (packed_high, np.zeros(pad, dtype=np.uint8))
        )
    high_words = (
        packed_high.view(np.uint32) if packed_high.size else np.empty(0, np.uint32)
    )
    header = np.array([b | (high_len << _B_BITS)], dtype=np.uint32)
    words = np.concatenate((header, low_words, high_words))
    wire = 4 + (n * b + 7) // 8 + (high_len + 7) // 8
    return words, wire


def _parse_header(stream: np.ndarray, offset: int, count: int):
    header = int(stream[offset])
    b = header & _B_MASK
    high_len = header >> _B_BITS
    n_low_words = (count * b + 31) // 32
    low_start = offset + 1
    high_start = low_start + n_low_words
    n_high_words = (high_len + 31) // 32
    return b, high_len, low_start, n_low_words, high_start, n_high_words


def decode_ef_block(stream: np.ndarray, offset: int, count: int) -> np.ndarray:
    """Fully decode one partition back into its residuals."""
    b, high_len, low_start, n_low, high_start, n_high = _parse_header(
        stream, offset, count
    )
    high_words = stream[high_start : high_start + n_high]
    bits = np.unpackbits(high_words.view(np.uint8), bitorder="little")
    set_pos = np.flatnonzero(bits[:high_len])
    if set_pos.size != count:
        raise CorruptPayloadError(
            f"EF high array has {set_pos.size} marks, expected {count}"
        )
    highs = set_pos - np.arange(count, dtype=np.int64)
    if b:
        lows = unpack_bits_scalar(stream[low_start : low_start + n_low], count, b)
        return (highs << b) | lows
    return highs


@register_codec
class PEFCodec(BlockedInvListCodec):
    """Partitioned Elias-Fano with partial-access intersection probes."""

    name = "PEF"
    year = 2014
    stream_dtype = np.uint32
    block_relative = True

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        return encode_ef_block(residuals)

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        return decode_ef_block(stream, offset, count)

    # ------------------------------------------------------------------
    def intersect_with_array(
        self, cs: CompressedIntegerSet, values: np.ndarray
    ) -> np.ndarray:
        """Probe without decompressing whole partitions.

        For each candidate partition, the high bitvector locates the run
        of elements whose high part equals the probe's, and only those
        elements' low bits are extracted.
        """
        if values.size == 0 or cs.n == 0:
            return np.empty(0, dtype=np.int64)
        if not self.skip_pointers:
            return intersect_sorted_arrays(self.decompress(cs), values)
        payload: BlockedPayload = cs.payload
        blk = np.searchsorted(payload.firsts, values, side="right") - 1
        valid = blk >= 0
        values, blk = values[valid], blk[valid]
        if values.size == 0:
            return np.empty(0, dtype=np.int64)
        parts = []
        boundaries = np.empty(blk.size, dtype=bool)
        boundaries[0] = True
        boundaries[1:] = blk[1:] != blk[:-1]
        starts = np.flatnonzero(boundaries)
        ends = np.append(starts[1:], blk.size)
        bs = self.block_size
        for s, e in zip(starts, ends):
            k = int(blk[s])
            count = min(bs, cs.n - k * bs)
            hit = self._probe_partition(
                payload.stream,
                int(payload.offsets[k]),
                count,
                int(payload.firsts[k]),
                values[s:e],
            )
            if hit.size:
                parts.append(hit)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    @staticmethod
    def _probe_partition(
        stream: np.ndarray,
        offset: int,
        count: int,
        base: int,
        probes: np.ndarray,
    ) -> np.ndarray:
        """Membership test for sorted *probes* inside one partition."""
        b, high_len, low_start, n_low, high_start, n_high = _parse_header(
            stream, offset, count
        )
        high_words = stream[high_start : high_start + n_high]
        bits = np.unpackbits(high_words.view(np.uint8), bitorder="little")
        set_pos = np.flatnonzero(bits[:high_len])
        highs = set_pos - np.arange(count, dtype=np.int64)
        residuals = probes - base
        in_range = residuals >= 0
        residuals = residuals[in_range]
        probes = probes[in_range]
        ph = residuals >> b
        if b == 0:
            idx = np.searchsorted(highs, ph)
            idx[idx == count] = count - 1
            return probes[highs[idx] == ph]
        # Candidate index range per probe: elements sharing the high part.
        lo_idx = np.searchsorted(highs, ph, side="left")
        hi_idx = np.searchsorted(highs, ph, side="right")
        n_cand = hi_idx - lo_idx
        if int(n_cand.sum()) == 0:
            return probes[:0]
        # Gather only the candidate slots' low bits (partial access).
        cand = np.repeat(lo_idx, n_cand) + _ramp(n_cand)
        low_words = stream[low_start : low_start + n_low].astype(np.uint64)
        ext = np.zeros(low_words.size + 1, dtype=np.uint64)
        ext[:-1] = low_words
        windows = ext[:-1] | (ext[1:] << np.uint64(32))
        start = cand * b
        mask = np.uint64((1 << b) - 1)
        lows = (
            (windows[start >> 5] >> (start & 31).astype(np.uint64)) & mask
        ).astype(np.int64)
        target_low = np.repeat(residuals & ((1 << b) - 1), n_cand)
        matched = np.zeros(probes.size, dtype=bool)
        probe_of_cand = np.repeat(np.arange(probes.size), n_cand)
        matched[probe_of_cand[lows == target_low]] = True
        return probes[matched]


def _ramp(counts: np.ndarray) -> np.ndarray:
    """[0..c0-1, 0..c1-1, ...] for the given segment lengths."""
    total = int(counts.sum())
    ramp = np.arange(total, dtype=np.int64)
    seg_starts = np.cumsum(counts) - counts
    return ramp - np.repeat(seg_starts, counts)
