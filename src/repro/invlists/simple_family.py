"""The Simple codec family (paper Sections 3.6–3.8).

All three codecs pack as many small integers as possible into one
machine word behind a 4-bit selector:

* **Simple9** (Anh & Moffat, 2005): 32-bit words, 28 data bits, 9
  packings from 28×1-bit to 1×28-bit.
* **Simple16** (Zhang, Long, Suel, 2008): 32-bit words, all 16 selector
  values used, with split cases (e.g. 3×6 then 2×5, and 2×5 then 3×6)
  that waste no data bits.
* **Simple8b** (Anh & Moffat, 2010): 64-bit words with 60 data bits, so
  only 4 selector bits are paid per 60 (not per 28) data bits; selectors
  0 and 1 encode runs of 240/120 ones with no data bits at all.

Encoding is greedy: at each position the codec picks the selector that
packs the most values such that all of them fit.  At a block tail a
selector may cover more slots than values remain; the decoder truncates
by the block's known element count.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import CorruptPayloadError, DomainOverflowError
from repro.core.registry import register_codec
from repro.invlists.blocks import BlockedInvListCodec

# (count, bits per value) per selector, biggest count first.
S9_CASES: list[tuple[int, int]] = [
    (28, 1), (14, 2), (9, 3), (7, 4), (5, 5), (4, 7), (3, 9), (2, 14), (1, 28),
]

# Simple16: per-selector tuple of per-slot bit widths (sum ≤ 28).
S16_CASES: list[tuple[int, ...]] = [
    (1,) * 28,
    (2,) * 7 + (1,) * 14,
    (1,) * 7 + (2,) * 7 + (1,) * 7,
    (1,) * 14 + (2,) * 7,
    (2,) * 14,
    (4,) * 1 + (3,) * 8,
    (3,) * 1 + (4,) * 4 + (3,) * 3,
    (4,) * 7,
    (5,) * 4 + (4,) * 2,
    (4,) * 2 + (5,) * 4,
    (6,) * 3 + (5,) * 2,
    (5,) * 2 + (6,) * 3,
    (7,) * 4,
    (10,) * 1 + (9,) * 2,
    (14,) * 2,
    (28,) * 1,
]

# Simple8b: selectors 0/1 are runs of ones; 2..15 are uniform packings.
S8B_RUN_CASES: list[int] = [240, 120]  # selector 0 and 1
S8B_PACK_CASES: list[tuple[int, int]] = [
    (60, 1), (30, 2), (20, 3), (15, 4), (12, 5), (10, 6), (8, 7), (7, 8),
    (6, 10), (5, 12), (4, 15), (3, 20), (2, 30), (1, 60),
]

_S16_SHIFTS = [
    np.cumsum((0,) + widths[:-1]).astype(np.int64) for widths in S16_CASES
]
_S16_WIDTHS = [np.array(widths, dtype=np.int64) for widths in S16_CASES]
_S16_MAX = [np.int64(1) << w for w in _S16_WIDTHS]

# Precomputed per-selector shift/mask tables: every decode (scalar and
# batched) indexes these instead of rebuilding arange ramps per word.
_S9_SHIFTS = [
    width * np.arange(count, dtype=np.int64) for count, width in S9_CASES
]
_S9_MASKS = [np.int64((1 << width) - 1) for _, width in S9_CASES]
_S16_MASKS = [(np.int64(1) << w) - 1 for w in _S16_WIDTHS]
_S8B_SHIFTS = [
    width * np.arange(count, dtype=np.int64) for count, width in S8B_PACK_CASES
]
_S8B_MASKS = [np.int64((1 << width) - 1) for _, width in S8B_PACK_CASES]

_S9_COUNTS = np.array([c for c, _ in S9_CASES], dtype=np.int64)
_S16_COUNTS = np.array([len(w) for w in S16_CASES], dtype=np.int64)
_S8B_COUNTS = np.array(
    S8B_RUN_CASES + [c for c, _ in S8B_PACK_CASES], dtype=np.int64
)


def _decode_all_simple(
    payload, n: int, block_size: int, counts_lut: np.ndarray, extract, shift: int
) -> np.ndarray:
    """Batched whole-stream decode shared by the Simple family.

    Words are grouped by selector and each group unpacks in one
    vectorised pass; a word's *valid* slot count (smaller than the
    selector's slot count only at a block tail) is derived from the
    per-block value budget, so padded tail slots are dropped without any
    per-block loop.
    """
    stream = payload.stream
    offsets = payload.offsets
    nb = offsets.size
    sel = (stream >> shift).astype(np.int64)
    cnt = counts_lut[sel]
    words_per_block = np.diff(np.append(offsets, stream.size))
    block_of_word = np.repeat(np.arange(nb), words_per_block)
    cum = np.cumsum(cnt) - cnt
    emitted_before = cum - cum[offsets][block_of_word]
    block_count = np.full(nb, block_size, dtype=np.int64)
    if n % block_size:
        block_count[-1] = n % block_size
    valid = np.clip(block_count[block_of_word] - emitted_before, 0, cnt)
    dest_start = block_of_word * block_size + emitted_before
    out = np.empty(n, dtype=np.int64)
    for s in np.unique(sel):
        widx = np.flatnonzero(sel == s)
        vals = extract(stream[widx], int(s))
        slots = np.arange(vals.shape[1], dtype=np.int64)
        # Only words clipped by a block tail need the masked scatter; the
        # common full words write their whole rectangle directly.
        clipped = valid[widx] < cnt[widx]
        if clipped.any():
            full = ~clipped
            out[dest_start[widx[full]][:, None] + slots] = vals[full]
            cw = widx[clipped]
            mask = slots < valid[cw][:, None]
            out[(dest_start[cw][:, None] + slots)[mask]] = vals[clipped][mask]
        else:
            out[dest_start[widx][:, None] + slots] = vals
    return out


def _s9_extract(words: np.ndarray, selector: int) -> np.ndarray:
    payload = (words & np.uint32((1 << 28) - 1)).astype(np.int64)
    return (payload[:, None] >> _S9_SHIFTS[selector]) & _S9_MASKS[selector]


def _s16_extract(words: np.ndarray, selector: int) -> np.ndarray:
    payload = (words & np.uint32((1 << 28) - 1)).astype(np.int64)
    return (payload[:, None] >> _S16_SHIFTS[selector]) & _S16_MASKS[selector]


def _s8b_extract(words: np.ndarray, selector: int) -> np.ndarray:
    if selector < 2:
        return np.ones((words.size, S8B_RUN_CASES[selector]), dtype=np.int64)
    payload = (words & np.uint64((1 << 60) - 1)).astype(np.int64)
    return (payload[:, None] >> _S8B_SHIFTS[selector - 2]) & _S8B_MASKS[
        selector - 2
    ]


# ----------------------------------------------------------------------
# Simple9
# ----------------------------------------------------------------------
def s9_encode(values: np.ndarray) -> np.ndarray:
    """Greedy Simple9 encoding of an int64 array into uint32 words."""
    if values.size and int(values.max()) >> 28:
        raise DomainOverflowError(
            "Simple9 cannot encode values of 28+ bits "
            f"(got {int(values.max())})"
        )
    v = values
    n = int(v.size)
    out: list[int] = []
    i = 0
    while i < n:
        for selector, (count, width) in enumerate(S9_CASES):
            take = min(count, n - i)
            chunk = v[i : i + take]
            if int(chunk.max()) < (1 << width):
                word = selector << 28
                shifts = width * np.arange(take, dtype=np.int64)
                word |= int(np.bitwise_or.reduce(chunk << shifts))
                out.append(word)
                i += take
                break
        else:  # pragma: no cover - (1, 28) always fits after the check
            raise AssertionError("Simple9 selector selection failed")
    return np.array(out, dtype=np.uint32)


def s9_decode(words: np.ndarray, count: int) -> np.ndarray:
    """Decode *count* values from Simple9 words."""
    out = np.empty(count, dtype=np.int64)
    pos = 0
    for word in words:
        if pos >= count:
            break
        word = int(word)
        selector = word >> 28
        take = min(S9_CASES[selector][0], count - pos)
        payload = word & ((1 << 28) - 1)
        out[pos : pos + take] = (payload >> _S9_SHIFTS[selector][:take]) & (
            _S9_MASKS[selector]
        )
        pos += take
    if pos < count:
        raise CorruptPayloadError("Simple9 stream ended early")
    return out


def s9_words_needed(words: np.ndarray, count: int) -> int:
    """Number of leading words that decode to *count* values."""
    pos = 0
    for used, word in enumerate(words, start=1):
        pos += S9_CASES[int(word) >> 28][0]
        if pos >= count:
            return used
    raise CorruptPayloadError("Simple9 stream ended early")


# ----------------------------------------------------------------------
# Simple16
# ----------------------------------------------------------------------
def s16_encode(values: np.ndarray) -> np.ndarray:
    """Greedy Simple16 encoding of an int64 array into uint32 words."""
    if values.size and int(values.max()) >> 28:
        raise DomainOverflowError(
            "Simple16 cannot encode values of 28+ bits "
            f"(got {int(values.max())})"
        )
    v = values
    n = int(v.size)
    out: list[int] = []
    i = 0
    while i < n:
        for selector in range(16):
            widths = _S16_WIDTHS[selector]
            take = min(widths.size, n - i)
            chunk = v[i : i + take]
            if bool((chunk < _S16_MAX[selector][:take]).all()):
                word = selector << 28
                word |= int(
                    np.bitwise_or.reduce(chunk << _S16_SHIFTS[selector][:take])
                )
                out.append(word)
                i += take
                break
        else:  # pragma: no cover - selector 15 (1×28) always fits
            raise AssertionError("Simple16 selector selection failed")
    return np.array(out, dtype=np.uint32)


def s16_decode(words: np.ndarray, count: int) -> np.ndarray:
    """Decode *count* values from Simple16 words."""
    out = np.empty(count, dtype=np.int64)
    pos = 0
    for word in words:
        if pos >= count:
            break
        word = int(word)
        selector = word >> 28
        take = min(_S16_WIDTHS[selector].size, count - pos)
        payload = word & ((1 << 28) - 1)
        out[pos : pos + take] = (payload >> _S16_SHIFTS[selector][:take]) & (
            _S16_MASKS[selector][:take]
        )
        pos += take
    if pos < count:
        raise CorruptPayloadError("Simple16 stream ended early")
    return out


def s16_words_needed(words: np.ndarray, count: int) -> int:
    pos = 0
    for used, word in enumerate(words, start=1):
        pos += _S16_WIDTHS[int(word) >> 28].size
        if pos >= count:
            return used
    raise CorruptPayloadError("Simple16 stream ended early")


# ----------------------------------------------------------------------
# Simple8b
# ----------------------------------------------------------------------
def s8b_encode(values: np.ndarray) -> np.ndarray:
    """Greedy Simple8b encoding of an int64 array into uint64 words."""
    if values.size and int(values.max()) >> 60:
        raise DomainOverflowError("Simple8b cannot encode values of 60+ bits")
    v = values
    n = int(v.size)
    out: list[int] = []
    i = 0
    while i < n:
        emitted = False
        for selector, run in enumerate(S8B_RUN_CASES):
            take = min(run, n - i)
            chunk = v[i : i + take]
            if bool((chunk == 1).all()):
                out.append(selector << 60)
                i += take
                emitted = True
                break
        if emitted:
            continue
        for idx, (count, width) in enumerate(S8B_PACK_CASES):
            selector = idx + 2
            take = min(count, n - i)
            chunk = v[i : i + take]
            if int(chunk.max()) < (1 << width):
                word = selector << 60
                shifts = width * np.arange(take, dtype=np.int64)
                # shift + width never exceeds the 60-bit payload, so the
                # int64 intermediate cannot overflow.
                word |= int(np.bitwise_or.reduce(chunk << shifts))
                out.append(word)
                i += take
                break
        else:  # pragma: no cover - (1, 60) always fits after the check
            raise AssertionError("Simple8b selector selection failed")
    return np.array(out, dtype=np.uint64)


def s8b_decode(words: np.ndarray, count: int) -> np.ndarray:
    """Decode *count* values from Simple8b words."""
    out = np.empty(count, dtype=np.int64)
    pos = 0
    for word in words:
        if pos >= count:
            break
        word = int(word)
        selector = word >> 60
        if selector < 2:
            take = min(S8B_RUN_CASES[selector], count - pos)
            out[pos : pos + take] = 1
            pos += take
            continue
        take = min(S8B_PACK_CASES[selector - 2][0], count - pos)
        payload = word & ((1 << 60) - 1)
        out[pos : pos + take] = (
            payload >> _S8B_SHIFTS[selector - 2][:take]
        ) & _S8B_MASKS[selector - 2]
        pos += take
    if pos < count:
        raise CorruptPayloadError("Simple8b stream ended early")
    return out


def s8b_words_needed(words: np.ndarray, count: int) -> int:
    pos = 0
    for used, word in enumerate(words, start=1):
        selector = int(word) >> 60
        if selector < 2:
            pos += S8B_RUN_CASES[selector]
        else:
            pos += S8B_PACK_CASES[selector - 2][0]
        if pos >= count:
            return used
    raise CorruptPayloadError("Simple8b stream ended early")


# ----------------------------------------------------------------------
# Codec classes
# ----------------------------------------------------------------------
@register_codec
class Simple9Codec(BlockedInvListCodec):
    """Simple9 over 128-gap blocks."""

    name = "Simple9"
    year = 2005
    stream_dtype = np.uint32

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        words = s9_encode(residuals)
        return words, int(words.nbytes)

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        return s9_decode(stream[offset:], count)

    def _decode_all(self, payload, n: int) -> np.ndarray:
        return _decode_all_simple(
            payload, n, self.block_size, _S9_COUNTS, _s9_extract, 28
        )


@register_codec
class Simple16Codec(BlockedInvListCodec):
    """Simple16 over 128-gap blocks."""

    name = "Simple16"
    year = 2008
    stream_dtype = np.uint32

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        words = s16_encode(residuals)
        return words, int(words.nbytes)

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        return s16_decode(stream[offset:], count)

    def _decode_all(self, payload, n: int) -> np.ndarray:
        return _decode_all_simple(
            payload, n, self.block_size, _S16_COUNTS, _s16_extract, 28
        )


@register_codec
class Simple8bCodec(BlockedInvListCodec):
    """Simple8b over 128-gap blocks (64-bit words)."""

    name = "Simple8b"
    year = 2010
    stream_dtype = np.uint64

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        words = s8b_encode(residuals)
        return words, int(words.nbytes)

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        return s8b_decode(stream[offset:], count)

    def _decode_all(self, payload, n: int) -> np.ndarray:
        return _decode_all_simple(
            payload, n, self.block_size, _S8B_COUNTS, _s8b_extract, 60
        )
