"""List — the uncompressed inverted-list baseline ("List" in the paper's
legends).

Values are stored verbatim as 32-bit integers (4 bytes per element).  Per
Section 5, the paper measures its "decompression" as the cost of a memory
copy into a fresh array; intersection uses binary-search probing directly
on the stored array (no skip pointers needed — the array itself is random
access), or a linear merge for similar sizes.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.base import (
    Capability,
    CompressedIntegerSet,
    IntegerSetCodec,
    intersect_sorted_arrays,
    union_sorted_arrays,
)
from repro.core.registry import register_codec
from repro.invlists.blocks import SVS_RATIO_THRESHOLD


@register_codec
class UncompressedListCodec(IntegerSetCodec):
    """Raw sorted int32 array."""

    name = "List"
    family = "invlist"
    year = 1970

    #: The stored form *is* the uncompressed form, so compressed-domain
    #: ops are plain sorted merges re-wrapped as int32 — declared so
    #: delta-overlay leaves (always "List") can ride the compressed
    #: execution path alongside capable codecs.
    CAPABILITIES = frozenset(
        {
            Capability.INTERSECT_COMPRESSED,
            Capability.UNION_COMPRESSED,
            Capability.INTERSECT_WITH_ARRAY,
        }
    )

    def compress(
        self, values: Iterable[int] | np.ndarray, universe: int | None = None
    ) -> CompressedIntegerSet:
        arr, universe = self._prepare(values, universe)
        stored = arr.astype(np.int32)
        return CompressedIntegerSet(
            self.name, stored, int(arr.size), universe, int(stored.nbytes)
        )

    def decompress(self, cs: CompressedIntegerSet) -> np.ndarray:
        # An explicit copy: the paper measures the uncompressed list's
        # "decompression" as allocating a new array and copying into it.
        return cs.payload.astype(np.int64)

    def intersect(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> np.ndarray:
        short, long_ = (a, b) if a.n <= b.n else (b, a)
        if short.n == 0:
            return np.empty(0, dtype=np.int64)
        if long_.n < short.n * SVS_RATIO_THRESHOLD:
            return intersect_sorted_arrays(
                short.payload.astype(np.int64), long_.payload.astype(np.int64)
            )
        return self.intersect_with_array(long_, short.payload.astype(np.int64))

    def intersect_with_array(
        self, cs: CompressedIntegerSet, values: np.ndarray
    ) -> np.ndarray:
        """Binary-search probing straight on the stored array."""
        if values.size == 0 or cs.n == 0:
            return np.empty(0, dtype=np.int64)
        stored = cs.payload
        idx = np.searchsorted(stored, values)
        idx[idx == stored.size] = stored.size - 1
        hits = stored[idx] == values
        return values[hits]

    def union(self, a: CompressedIntegerSet, b: CompressedIntegerSet) -> np.ndarray:
        return union_sorted_arrays(
            a.payload.astype(np.int64), b.payload.astype(np.int64)
        )

    def intersect_compressed(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> CompressedIntegerSet:
        out = self.intersect(a, b).astype(np.int32)
        return CompressedIntegerSet(
            self.name, out, int(out.size), min(a.universe, b.universe), int(out.nbytes)
        )

    def union_compressed(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> CompressedIntegerSet:
        out = self.union(a, b).astype(np.int32)
        return CompressedIntegerSet(
            self.name, out, int(out.size), max(a.universe, b.universe), int(out.nbytes)
        )
