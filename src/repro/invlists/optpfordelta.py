"""OptPforDelta (Yan, Ding, Suel, 2009; paper Section 3.5).

Identical wire format to NewPforDelta, but instead of the fixed 90 %
regular-value rule, the bit width ``b`` of **each block** is chosen by
explicitly minimising the block's encoded size over all candidate
widths — the paper's point that "setting a fixed threshold for the number
of exceptions does not give the best tradeoff".
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import register_codec
from repro.invlists.bitpack import WORD_BITS, packed_word_count
from repro.invlists.newpfordelta import NewPforDeltaCodec

_VB_THRESHOLDS = np.array([1 << 7, 1 << 14, 1 << 21, 1 << 28], dtype=np.int64)


def _vb_length(values: np.ndarray) -> int:
    """Total VB bytes needed for an int64 array (without encoding it)."""
    if values.size == 0:
        return 0
    return int(values.size + (values[:, None] >= _VB_THRESHOLDS).sum())


def choose_b_optimal(values: np.ndarray) -> int:
    """Width minimising header + slots + side-array bytes for the block."""
    if values.size == 0:
        return 1
    n = int(values.size)
    bitlens = np.frompyfunc(int.bit_length, 1, 1)(values.astype(object))
    bitlens = np.maximum(bitlens.astype(np.int64), 1)
    best_b, best_cost = 1, None
    for b in range(1, int(bitlens.max()) + 1):
        exc_pos = np.flatnonzero(bitlens > b)
        slots_bytes = packed_word_count(n, b) * (WORD_BITS // 8)
        pos_cost = _vb_length(np.diff(exc_pos, prepend=0)) if exc_pos.size else 0
        high_cost = _vb_length(values[exc_pos] >> b) if exc_pos.size else 0
        cost = 8 + slots_bytes + pos_cost + high_cost
        if best_cost is None or cost < best_cost:
            best_b, best_cost = b, cost
    return best_b


@register_codec
class OptPforDeltaCodec(NewPforDeltaCodec):
    """NewPforDelta wire format with per-block size-optimal widths."""

    name = "OptPforDelta"
    year = 2009

    def _choose_b(self, values: np.ndarray) -> int:
        return choose_b_optimal(values)
