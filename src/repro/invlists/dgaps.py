"""d-gap transform shared by the delta-based inverted-list codecs.

Per the paper's Section 3 overview: ``L'[0] = L[0]`` and
``L'[i] = L[i] - L[i-1]``, so the gaps of a strictly increasing list are
all ≥ 1 except possibly the first.
"""

from __future__ import annotations

import numpy as np


def to_dgaps(values: np.ndarray) -> np.ndarray:
    """Delta-encode a strictly increasing int64 array."""
    if values.size == 0:
        return values.astype(np.int64, copy=False)
    return np.diff(values, prepend=0).astype(np.int64, copy=False)


def from_dgaps(gaps: np.ndarray) -> np.ndarray:
    """Invert :func:`to_dgaps` via a prefix sum."""
    if gaps.size == 0:
        return gaps.astype(np.int64, copy=False)
    return np.cumsum(gaps, dtype=np.int64)
