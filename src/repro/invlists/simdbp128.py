"""SIMDBP128 and SIMDBP128* (Lemire & Boytsov, 2015; paper Section 3.11).

**SIMDBP128** is plain binary packing of d-gaps: 128-gap blocks, 16
blocks merged into a 2048-integer *bucket* whose metadata is a 16-byte
array of per-block bit widths.  Every value in a block is stored with the
block's width, unpacked here with the vectorised lane kernel (the SIMD
substitution, see :mod:`repro.invlists.bitpack`).

**SIMDBP128*** is the paper's no-d-gap variant (Section 3 overview lists
it with PEF as the exceptions to delta coding): each block stores
``value - block_first`` offsets, so decoding needs **no prefix sum** —
faster than SIMDPforDelta* at the price of wider values (offsets span the
whole block range while d-gaps only span element spacing), exactly the
space/time trade the paper reports between the two.  Each block carries
its width (1 byte) and its first value (4 bytes) as metadata.

Wire accounting: the numpy stream stores each block's width in a full
word for alignment; the logical wire size counts 1 byte per block width
(plus, for the ``*`` variant, 4 bytes per block first value), matching
the 16-byte-per-bucket metadata cost of the original format.
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import register_codec
from repro.invlists.bitpack import (
    pack_bits,
    packed_word_count,
    required_bits,
    unpack_bits_simd,
    unpack_bits_simd_blocks,
)
from repro.invlists.blocks import BlockedInvListCodec, BlockedPayload

#: Blocks per bucket in the original layout (16 × 128 = 2048 integers).
BLOCKS_PER_BUCKET = 16


def _decode_all_bp(codec, payload: BlockedPayload, n: int) -> np.ndarray:
    """Batched whole-list decode shared by both BP128 variants: full
    blocks are grouped by bit width and unpacked in vectorised passes."""
    bs = codec.block_size
    stream = payload.stream
    offsets = payload.offsets
    nb = offsets.size
    b_arr = stream[offsets].astype(np.int64)
    out = np.empty(n, dtype=np.int64)
    full = np.ones(nb, dtype=bool)
    if n % bs:
        full[-1] = False
    for b in np.unique(b_arr[full]):
        idx = np.flatnonzero(full & (b_arr == b))
        w = packed_word_count(bs, int(b))
        mat = stream[offsets[idx][:, None] + 1 + np.arange(w)]
        vals = unpack_bits_simd_blocks(mat, bs, int(b))
        dest = (idx[:, None] * bs + np.arange(bs)).reshape(-1)
        out[dest] = vals.reshape(-1)
    if not full[-1]:
        k = nb - 1
        out[k * bs :] = codec._decode_block(stream, int(offsets[k]), n - k * bs)
    return out


@register_codec
class SIMDBP128Codec(BlockedInvListCodec):
    """Binary packing of d-gaps with per-block widths (bucketed metadata)."""

    name = "SIMDBP128"
    year = 2015
    stream_dtype = np.uint32

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        b = required_bits(residuals)
        packed = pack_bits(residuals, b)
        words = np.concatenate((np.array([b], dtype=np.uint32), packed))
        # Logical wire: 1 metadata byte per block (16 bytes per 16-block
        # bucket) + the packed bits.
        return words, 1 + int(packed.nbytes)

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        b = int(stream[offset])
        n_words = packed_word_count(count, b)
        return unpack_bits_simd(stream[offset + 1 : offset + 1 + n_words], count, b)

    def _decode_all(self, payload, n: int) -> np.ndarray:
        return _decode_all_bp(self, payload, n)


@register_codec
class SIMDBP128StarCodec(BlockedInvListCodec):
    """Binary packing of block-relative offsets — no prefix sum at decode."""

    name = "SIMDBP128*"
    year = 2017  # introduced by this paper's study
    stream_dtype = np.uint32
    block_relative = True

    def _decode_all(self, payload, n: int) -> np.ndarray:
        return _decode_all_bp(self, payload, n)

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        b = required_bits(residuals)
        packed = pack_bits(residuals, b)
        words = np.concatenate((np.array([b], dtype=np.uint32), packed))
        # 1 width byte + 4 bytes for the block's first value (stored in
        # the skip structure but integral to this format: decoding the
        # offsets requires it even without skip pointers).
        return words, 5 + int(packed.nbytes)

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        b = int(stream[offset])
        n_words = packed_word_count(count, b)
        return unpack_bits_simd(stream[offset + 1 : offset + 1 + n_words], count, b)
