"""Variable-partition PEF — the partition *optimisation* of Ottaviano &
Venturini's original system.

The registered :class:`~repro.invlists.pef.PEFCodec` uses fixed
128-element partitions (documented simplification).  This extension
restores the original's key idea: choose partition boundaries to
minimise total encoded bits, so clustered stretches get long, dense
partitions and scattered stretches get short ones.

The partition choice here is a dynamic program over cut points at
multiples of 32 with power-of-two window sizes (32…8192) — the same
style of bounded-candidate approximation the original paper uses to
make the DP linear-time.  Encoded partitions reuse the Elias-Fano block
format of :mod:`repro.invlists.pef`, and probing reuses its
partial-access kernel.

Not registered in the codec registry (it is an extension beyond the
study's roster); compare it against uniform PEF with
``benchmarks/bench_ablation_pef_partitioning.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.base import (
    CompressedIntegerSet,
    IntegerSetCodec,
    intersect_sorted_arrays,
    union_sorted_arrays,
)
from repro.invlists.blocks import SVS_RATIO_THRESHOLD
from repro.invlists.pef import PEFCodec, decode_ef_block, encode_ef_block

#: Cut-point granularity and window candidates for the partition DP.
STEP = 32
WINDOWS = (32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


@dataclass(frozen=True)
class OptimalPEFPayload:
    stream: np.ndarray  # uint32 EF blocks back to back
    offsets: np.ndarray  # int64 word offset per partition
    firsts: np.ndarray  # int64 first value per partition
    counts: np.ndarray  # int64 elements per partition
    wire_bytes: int


def partition_cost_bits(values: np.ndarray, i: int, j: int) -> int:
    """Exact encoded bits of EF-encoding values[i:j] as one partition."""
    n = j - i
    span = int(values[j - 1]) - int(values[i]) + 1
    b = max(0, (span // n).bit_length() - 1) if span > n else 0
    high_len = n + (span - 1 >> b) + 1
    return 32 + n * b + high_len  # header + lows + high bitvector


def choose_partitions(values: np.ndarray) -> np.ndarray:
    """Partition end indices minimising total bits over the candidate
    windows (always includes the final boundary at n)."""
    n = int(values.size)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # DP over cut positions k ∈ {STEP, 2*STEP, ..., n}.
    positions = list(range(STEP, n, STEP)) + [n]
    index_of = {pos: idx for idx, pos in enumerate(positions)}
    best = [np.inf] * len(positions)
    prev = [None] * len(positions)
    max_window = WINDOWS[-1]
    for idx, pos in enumerate(positions):
        if pos <= max_window:
            # The prefix as a single partition is always a candidate.
            cost = partition_cost_bits(values, 0, pos)
            if cost < best[idx]:
                best[idx] = cost
                prev[idx] = 0
        if pos % STEP == 0:
            candidates = (pos - w for w in WINDOWS)
        else:
            # The final (unaligned) position may end a partition at any
            # aligned cut within the window range.
            lo = max(STEP, pos - max_window)
            candidates = range(
                (lo + STEP - 1) // STEP * STEP, pos, STEP
            )
        for start in candidates:
            base_idx = index_of.get(start)
            if base_idx is None or start <= 0:
                continue
            cost = best[base_idx] + partition_cost_bits(values, start, pos)
            if cost < best[idx]:
                best[idx] = cost
                prev[idx] = start
    # Walk the predecessors back from n.
    bounds = []
    pos = n
    while pos > 0:
        bounds.append(pos)
        pos = prev[index_of[pos]]
    return np.array(sorted(bounds), dtype=np.int64)


# Deliberately unregistered: PEF-opt is a library extension outside the
# paper's 24-codec legend (tests assert it stays out of the registry);
# the uniform-partition "PEF" codec is the one the figures measure.
class OptimalPEFCodec(IntegerSetCodec):  # repro: noqa[REPRO001]
    """Partitioned Elias-Fano with DP-chosen variable partitions."""

    name = "PEF-opt"
    family = "invlist"
    year = 2014

    def compress(
        self, values: Iterable[int] | np.ndarray, universe: int | None = None
    ) -> CompressedIntegerSet:
        arr, universe = self._prepare(values, universe)
        ends = choose_partitions(arr)
        starts = np.concatenate(([0], ends[:-1])) if ends.size else ends
        chunks = []
        offsets = np.zeros(ends.size, dtype=np.int64)
        firsts = np.zeros(ends.size, dtype=np.int64)
        wire = 0
        pos = 0
        for k, (lo, hi) in enumerate(zip(starts, ends)):
            lo, hi = int(lo), int(hi)
            firsts[k] = arr[lo]
            offsets[k] = pos
            words, nbytes = encode_ef_block(arr[lo:hi] - arr[lo])
            chunks.append(words)
            pos += int(words.size)
            wire += nbytes
        stream = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.uint32)
        )
        counts = (ends - starts).astype(np.int64)
        payload = OptimalPEFPayload(stream, offsets, firsts, counts, wire)
        # Partition directory: 8 bytes each (offset + first), like skips.
        size = wire + 8 * int(ends.size)
        return CompressedIntegerSet(self.name, payload, int(arr.size), universe, size)

    def decompress(self, cs: CompressedIntegerSet) -> np.ndarray:
        payload: OptimalPEFPayload = cs.payload
        parts = []
        for k in range(payload.offsets.size):
            residuals = decode_ef_block(
                payload.stream, int(payload.offsets[k]), int(payload.counts[k])
            )
            parts.append(residuals + int(payload.firsts[k]))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def intersect(
        self, a: CompressedIntegerSet, b: CompressedIntegerSet
    ) -> np.ndarray:
        short, long_ = (a, b) if a.n <= b.n else (b, a)
        if short.n == 0:
            return np.empty(0, dtype=np.int64)
        if long_.n < short.n * SVS_RATIO_THRESHOLD:
            return intersect_sorted_arrays(
                self.decompress(short), self.decompress(long_)
            )
        return self.intersect_with_array(long_, self.decompress(short))

    def intersect_with_array(
        self, cs: CompressedIntegerSet, values: np.ndarray
    ) -> np.ndarray:
        """Partition-skipping probe with PEF's partial-access kernel."""
        if values.size == 0 or cs.n == 0:
            return np.empty(0, dtype=np.int64)
        payload: OptimalPEFPayload = cs.payload
        blk = np.searchsorted(payload.firsts, values, side="right") - 1
        valid = blk >= 0
        values, blk = values[valid], blk[valid]
        if values.size == 0:
            return np.empty(0, dtype=np.int64)
        parts = []
        boundaries = np.empty(blk.size, dtype=bool)
        boundaries[0] = True
        boundaries[1:] = blk[1:] != blk[:-1]
        starts = np.flatnonzero(boundaries)
        ends = np.append(starts[1:], blk.size)
        for s, e in zip(starts, ends):
            k = int(blk[s])
            hit = PEFCodec._probe_partition(
                payload.stream,
                int(payload.offsets[k]),
                int(payload.counts[k]),
                int(payload.firsts[k]),
                values[s:e],
            )
            if hit.size:
                parts.append(hit)
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def union(self, a: CompressedIntegerSet, b: CompressedIntegerSet) -> np.ndarray:
        return union_sorted_arrays(self.decompress(a), self.decompress(b))
