"""Inverted-list compression codecs (paper Section 3).

Importing this package registers all fifteen inverted-list codecs:
List, VB, GroupVB, Simple9, Simple16, Simple8b, PforDelta, PforDelta*,
NewPforDelta, OptPforDelta, PEF, SIMDPforDelta, SIMDPforDelta*,
SIMDBP128, and SIMDBP128*.
"""

from repro.invlists.blocks import BlockedInvListCodec, BlockedPayload
from repro.invlists.groupvb import GroupVBCodec
from repro.invlists.newpfordelta import NewPforDeltaCodec
from repro.invlists.optpfordelta import OptPforDeltaCodec
from repro.invlists.pef import PEFCodec
from repro.invlists.pfordelta import (
    PforDeltaCodec,
    PforDeltaStarCodec,
    SIMDPforDeltaCodec,
    SIMDPforDeltaStarCodec,
)
from repro.invlists.simdbp128 import SIMDBP128Codec, SIMDBP128StarCodec
from repro.invlists.simple_family import (
    Simple8bCodec,
    Simple9Codec,
    Simple16Codec,
)
from repro.invlists.uncompressed import UncompressedListCodec
from repro.invlists.vb import VBCodec

__all__ = [
    "BlockedInvListCodec",
    "BlockedPayload",
    "UncompressedListCodec",
    "VBCodec",
    "GroupVBCodec",
    "Simple9Codec",
    "Simple16Codec",
    "Simple8bCodec",
    "PforDeltaCodec",
    "PforDeltaStarCodec",
    "NewPforDeltaCodec",
    "OptPforDeltaCodec",
    "PEFCodec",
    "SIMDPforDeltaCodec",
    "SIMDPforDeltaStarCodec",
    "SIMDBP128Codec",
    "SIMDBP128StarCodec",
]
