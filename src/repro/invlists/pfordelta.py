"""PforDelta and PforDelta* (Zukowski et al., 2006; paper Section 3.3).

**PforDelta** compresses a 128-gap block by choosing the smallest bit
width ``b`` such that at least 90 % of the block's values fit in ``b``
bits (the *regular* values).  The block stores 128 b-bit slots plus an
exception area of 32-bit values.  Exception slots are chained into a
linked list threaded through the unused b-bit slots: each exception's
slot holds the distance (minus one) to the next exception, and when two
exceptions are more than ``2^b`` slots apart *forced exceptions* are
inserted between them.

**PforDelta*** is the paper's 100 %-regular variant: ``b`` covers every
value, so there are no exceptions and no patch loop — the ultra-fast
decode path the paper highlights.

Block wire layout (32-bit words):
``[header][packed slots][exceptions ...]`` with the header packing
``b`` (bits 0–7), the exception count (bits 8–15), and the index of the
first exception (bits 16–23, 0xFF = none).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import CorruptPayloadError
from repro.core.registry import register_codec
from repro.invlists.bitpack import (
    pack_bits,
    packed_word_count,
    required_bits,
    unpack_bits_scalar,
    unpack_bits_scalar_blocks,
    unpack_bits_simd,
    unpack_bits_simd_blocks,
)
from repro.invlists.blocks import BlockedInvListCodec

#: Fraction of a block that must be regular (paper: "say the threshold
#: is 90%").
REGULAR_FRACTION = 0.90
_NO_EXCEPTION = 0xFF


def choose_b_90(values: np.ndarray, fraction: float = REGULAR_FRACTION) -> int:
    """Smallest b such that ≥ *fraction* of values fit in b bits."""
    if values.size == 0:
        return 1
    ordered = np.sort(values)
    cutoff = ordered[
        min(values.size - 1, int(np.ceil(fraction * values.size)) - 1)
    ]
    return max(1, int(cutoff).bit_length())


def plan_exceptions(values: np.ndarray, b: int) -> np.ndarray:
    """Exception slot indices for width *b*, including forced exceptions.

    Real exceptions are the values that do not fit in *b* bits; forced
    exceptions are inserted whenever two consecutive exceptions are more
    than ``2^b`` slots apart (the slot link stores distance − 1).
    """
    limit = 1 << b  # maximum representable distance (stored as d - 1)
    real = np.flatnonzero(values >= limit)
    if real.size == 0:
        return real
    out: list[int] = []
    prev = int(real[0])
    out.append(prev)
    for nxt in real[1:]:
        nxt = int(nxt)
        while nxt - prev > limit:
            prev += limit
            out.append(prev)  # forced exception
        out.append(nxt)
        prev = nxt
    return np.array(out, dtype=np.int64)


def encode_pfor_block(values: np.ndarray, b: int) -> np.ndarray:
    """Encode one block at width *b* into header + slots + exceptions."""
    n = int(values.size)
    exceptions = plan_exceptions(values, b)
    slots = values.copy()
    if exceptions.size:
        # Thread the linked list: each exception slot stores the distance
        # (minus 1) to the next exception; the last stores 0.
        nxt = np.append(exceptions[1:], exceptions[-1] + 1)
        slots[exceptions] = nxt - exceptions - 1
        first = int(exceptions[0])
    else:
        first = _NO_EXCEPTION
    if exceptions.size > 0xFF:
        raise CorruptPayloadError("too many exceptions for an 8-bit count")
    header = np.array(
        [b | (exceptions.size << 8) | (first << 16)], dtype=np.uint32
    )
    packed = pack_bits(slots, b)
    exc_words = values[exceptions].astype(np.uint32)
    return np.concatenate((header, packed, exc_words))


def decode_pfor_block(
    stream: np.ndarray, offset: int, count: int, unpack
) -> np.ndarray:
    """Decode one block; *unpack* is the scalar or SIMD bit-unpack kernel."""
    header = int(stream[offset])
    b = header & 0xFF
    n_exc = (header >> 8) & 0xFF
    first = (header >> 16) & 0xFF
    n_words = packed_word_count(count, b)
    slots_start = offset + 1
    values = unpack(stream[slots_start : slots_start + n_words], count, b)
    if n_exc:
        if first == _NO_EXCEPTION:
            raise CorruptPayloadError("PforDelta exception count without chain")
        exc = stream[slots_start + n_words : slots_start + n_words + n_exc]
        pos = first
        for e in exc:
            if pos >= count:
                raise CorruptPayloadError("PforDelta exception chain overruns")
            nxt = pos + int(values[pos]) + 1
            values[pos] = int(e)
            pos = nxt
    return values


@register_codec
class PforDeltaCodec(BlockedInvListCodec):
    """PforDelta: 90 %-regular slots with a patched exception chain."""

    name = "PforDelta"
    year = 2006
    stream_dtype = np.uint32
    #: Bit-unpack kernels; the SIMD subclasses swap in the vector ones.
    _unpack = staticmethod(unpack_bits_scalar)
    _unpack_blocks = staticmethod(unpack_bits_scalar_blocks)

    def _choose_b(self, values: np.ndarray) -> int:
        return choose_b_90(values)

    def _encode_block(self, residuals: np.ndarray) -> tuple[np.ndarray, int]:
        words = encode_pfor_block(residuals, self._choose_b(residuals))
        return words, int(words.nbytes)

    def _decode_block(
        self, stream: np.ndarray, offset: int, count: int
    ) -> np.ndarray:
        return decode_pfor_block(stream, offset, count, self._unpack)

    def _decode_all(self, payload, n: int) -> np.ndarray:
        """Batched whole-list decode: full blocks sharing a bit width are
        unpacked together in one vectorised pass; the exception chains are
        then patched block by block (the per-exception traversal the
        paper's PforDelta* variant exists to avoid)."""
        bs = self.block_size
        stream = payload.stream
        offsets = payload.offsets
        nb = offsets.size
        headers = stream[offsets].astype(np.int64)
        b_arr = headers & 0xFF
        n_exc = (headers >> 8) & 0xFF
        first = (headers >> 16) & 0xFF
        out = np.empty(n, dtype=np.int64)
        full = np.ones(nb, dtype=bool)
        if n % bs:
            full[-1] = False
        for b in np.unique(b_arr[full]):
            idx = np.flatnonzero(full & (b_arr == b))
            w = packed_word_count(bs, int(b))
            mat = stream[offsets[idx][:, None] + 1 + np.arange(w)]
            vals = self._unpack_blocks(mat, bs, int(b))
            dest = (idx[:, None] * bs + np.arange(bs)).reshape(-1)
            out[dest] = vals.reshape(-1)
        if not full[-1]:
            k = nb - 1
            out[k * bs :] = self._decode_block(
                stream, int(offsets[k]), n - k * bs
            )
        # Patch exception chains of the batch-decoded blocks.  Chains are
        # sequential *within* a block but independent *across* blocks, so
        # the walk advances all blocks' chains in lock step: iteration j
        # patches the j-th exception of every block that has one.
        exc_blocks = np.flatnonzero((n_exc > 0) & full)
        if exc_blocks.size:
            w_arr = packed_word_count(bs, b_arr[exc_blocks])
            exc_start = offsets[exc_blocks] + 1 + w_arr
            counts = n_exc[exc_blocks]
            pos = first[exc_blocks].copy()
            base = exc_blocks * bs
            for j in range(int(counts.max())):
                sel = counts > j
                slot = base[sel] + pos[sel]
                links = out[slot]
                out[slot] = stream[exc_start[sel] + j]
                pos[sel] += links + 1
        return out


@register_codec
class PforDeltaStarCodec(PforDeltaCodec):
    """PforDelta*: b covers 100 % of each block — no exceptions at all."""

    name = "PforDelta*"
    year = 2017  # introduced by this paper's study

    def _choose_b(self, values: np.ndarray) -> int:
        return required_bits(values)


@register_codec
class SIMDPforDeltaCodec(PforDeltaCodec):
    """SIMDPforDelta (Lemire & Boytsov, 2015): same wire format and hence
    the same space as PforDelta, decoded with the vectorised lane kernel
    (this library's SIMD substitution — see
    :mod:`repro.invlists.bitpack`)."""

    name = "SIMDPforDelta"
    year = 2015
    _unpack = staticmethod(unpack_bits_simd)
    _unpack_blocks = staticmethod(unpack_bits_simd_blocks)


@register_codec
class SIMDPforDeltaStarCodec(PforDeltaStarCodec):
    """SIMDPforDelta*: the exception-free variant with the vectorised
    lane kernel — one of the paper's three overall recommendations."""

    name = "SIMDPforDelta*"
    year = 2017
    _unpack = staticmethod(unpack_bits_simd)
    _unpack_blocks = staticmethod(unpack_bits_simd_blocks)
